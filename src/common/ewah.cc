#include "common/ewah.h"

#include <bit>
#include <algorithm>

#include "common/logging.h"

namespace scube {

namespace {
constexpr uint64_t kMaxRunLength = 0xFFFFFFFFULL;       // 32 bits
constexpr uint64_t kMaxLiteralCount = 0x7FFFFFFFULL;    // 31 bits
constexpr uint64_t kAllOnes = ~0ULL;

inline uint64_t MixHash(uint64_t h, uint64_t v) {
  // splitmix64 finalizer over the running state xor the value.
  uint64_t z = h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

void EwahBitmap::Builder::EnsureMarker() {
  if (!has_marker_) {
    last_marker_ = buffer_.size();
    buffer_.push_back(MakeMarker(false, 0, 0));
    has_marker_ = true;
  }
}

void EwahBitmap::Builder::AddEmptyWords(bool bit, uint64_t count) {
  while (count > 0) {
    EnsureMarker();
    uint64_t marker = buffer_[last_marker_];
    bool run_bit = MarkerRunBit(marker);
    uint64_t run = MarkerRunLength(marker);
    uint64_t lits = MarkerLiteralCount(marker);
    // A marker's clean run precedes its literals; once literals exist (or the
    // run bit differs on a non-empty run), a fresh marker is required.
    bool compatible = lits == 0 && (run == 0 || run_bit == bit);
    if (!compatible || run == kMaxRunLength) {
      last_marker_ = buffer_.size();
      buffer_.push_back(MakeMarker(bit, 0, 0));
      marker = buffer_[last_marker_];
      run = 0;
    }
    uint64_t can_take = std::min(count, kMaxRunLength - run);
    buffer_[last_marker_] = MakeMarker(bit, run + can_take, 0);
    count -= can_take;
  }
}

void EwahBitmap::Builder::AddLiteralWord(uint64_t word) {
  EnsureMarker();
  uint64_t marker = buffer_[last_marker_];
  uint64_t lits = MarkerLiteralCount(marker);
  if (lits == kMaxLiteralCount) {
    last_marker_ = buffer_.size();
    buffer_.push_back(MakeMarker(false, 0, 0));
    marker = buffer_[last_marker_];
    lits = 0;
  }
  buffer_[last_marker_] =
      MakeMarker(MarkerRunBit(marker), MarkerRunLength(marker), lits + 1);
  buffer_.push_back(word);
}

void EwahBitmap::Builder::FlushCurrentWord() {
  uint64_t w = current_word_;
  if (w == 0) {
    AddEmptyWords(false, 1);
  } else if (w == kAllOnes) {
    AddEmptyWords(true, 1);
  } else {
    AddLiteralWord(w);
  }
}

void EwahBitmap::Builder::Add(uint64_t pos) {
  SCUBE_CHECK(!any_ || pos > last_pos_);
  uint64_t word_index = pos >> 6;
  if (word_index > current_word_index_ || (!any_ && word_index > 0)) {
    if (any_ || current_word_ != 0) {
      FlushCurrentWord();
    } else if (word_index > 0 && current_word_index_ == 0 && !any_) {
      // First word was never started: it is empty.
      AddEmptyWords(false, 1);
    }
    if (word_index > current_word_index_ + 1) {
      AddEmptyWords(false, word_index - current_word_index_ - 1);
    }
    current_word_ = 0;
    current_word_index_ = word_index;
  }
  current_word_ |= 1ULL << (pos & 63);
  last_pos_ = pos;
  any_ = true;
  size_in_bits_ = pos + 1;
}

EwahBitmap EwahBitmap::Builder::Build() {
  EwahBitmap out;
  if (any_) {
    FlushCurrentWord();
    out.buffer_ = std::move(buffer_);
    out.size_in_bits_ = size_in_bits_;
  }
  *this = Builder();
  return out;
}

EwahBitmap EwahBitmap::FromIndices(const std::vector<uint64_t>& sorted) {
  Builder b;
  for (uint64_t pos : sorted) b.Add(pos);
  return b.Build();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

EwahBitmap::Reader::Reader(const std::vector<uint64_t>& buffer)
    : buffer_(&buffer) {
  LoadMarker();
}

void EwahBitmap::Reader::LoadMarker() {
  while (run_left_ == 0 && lit_left_ == 0 && pos_ < buffer_->size()) {
    uint64_t marker = (*buffer_)[pos_];
    ++pos_;
    run_bit_ = MarkerRunBit(marker);
    run_left_ = MarkerRunLength(marker);
    lit_left_ = MarkerLiteralCount(marker);
  }
}

bool EwahBitmap::Reader::HasNext() const {
  return run_left_ > 0 || lit_left_ > 0;
}

uint64_t EwahBitmap::Reader::SegmentLength() const {
  if (run_left_ > 0) return run_left_;
  return lit_left_ > 0 ? 1 : 0;
}

bool EwahBitmap::Reader::InRun() const { return run_left_ > 0; }

bool EwahBitmap::Reader::RunBit() const { return run_bit_; }

uint64_t EwahBitmap::Reader::LiteralWord() const {
  return (*buffer_)[pos_];
}

void EwahBitmap::Reader::Skip(uint64_t count) {
  if (count == 0) return;
  if (run_left_ > 0) {
    SCUBE_CHECK(count <= run_left_);
    run_left_ -= count;
  } else {
    SCUBE_CHECK(count == 1 && lit_left_ > 0);
    --lit_left_;
    ++pos_;
  }
  LoadMarker();
}

// ---------------------------------------------------------------------------
// Binary operations
// ---------------------------------------------------------------------------

EwahBitmap EwahBitmap::BinaryMerge(const EwahBitmap& a, const EwahBitmap& b,
                                   BinaryOp op) {
  Reader ra(a.buffer_);
  Reader rb(b.buffer_);
  Builder out;

  auto combine_bits = [op](bool x, bool y) {
    switch (op) {
      case BinaryOp::kAnd:
        return x && y;
      case BinaryOp::kOr:
        return x || y;
      case BinaryOp::kXor:
        return x != y;
      case BinaryOp::kAndNot:
        return x && !y;
    }
    return false;
  };
  auto combine_words = [op](uint64_t x, uint64_t y) -> uint64_t {
    switch (op) {
      case BinaryOp::kAnd:
        return x & y;
      case BinaryOp::kOr:
        return x | y;
      case BinaryOp::kXor:
        return x ^ y;
      case BinaryOp::kAndNot:
        return x & ~y;
    }
    return 0;
  };
  auto emit_word = [&out](uint64_t w) {
    if (w == 0) {
      out.AddEmptyWords(false, 1);
    } else if (w == kAllOnes) {
      out.AddEmptyWords(true, 1);
    } else {
      out.AddLiteralWord(w);
    }
  };

  uint64_t words_emitted = 0;
  while (ra.HasNext() && rb.HasNext()) {
    if (ra.InRun() && rb.InRun()) {
      uint64_t n = std::min(ra.SegmentLength(), rb.SegmentLength());
      out.AddEmptyWords(combine_bits(ra.RunBit(), rb.RunBit()), n);
      ra.Skip(n);
      rb.Skip(n);
      words_emitted += n;
    } else if (ra.InRun()) {
      uint64_t run_word = ra.RunBit() ? kAllOnes : 0ULL;
      uint64_t n = ra.SegmentLength();
      // Consume up to n literal words from b against the constant run word.
      while (n > 0 && rb.HasNext() && !rb.InRun()) {
        emit_word(combine_words(run_word, rb.LiteralWord()));
        rb.Skip(1);
        ra.Skip(1);
        --n;
        ++words_emitted;
      }
    } else if (rb.InRun()) {
      uint64_t run_word = rb.RunBit() ? kAllOnes : 0ULL;
      uint64_t n = rb.SegmentLength();
      while (n > 0 && ra.HasNext() && !ra.InRun()) {
        emit_word(combine_words(ra.LiteralWord(), run_word));
        ra.Skip(1);
        rb.Skip(1);
        --n;
        ++words_emitted;
      }
    } else {
      emit_word(combine_words(ra.LiteralWord(), rb.LiteralWord()));
      ra.Skip(1);
      rb.Skip(1);
      ++words_emitted;
    }
  }

  // Remainder: the exhausted side is an implicit run of zeros.
  bool keep_a_tail =
      op == BinaryOp::kOr || op == BinaryOp::kXor || op == BinaryOp::kAndNot;
  bool keep_b_tail = op == BinaryOp::kOr || op == BinaryOp::kXor;
  if (keep_a_tail) {
    while (ra.HasNext()) {
      if (ra.InRun()) {
        uint64_t n = ra.SegmentLength();
        out.AddEmptyWords(ra.RunBit(), n);
        ra.Skip(n);
        words_emitted += n;
      } else {
        emit_word(ra.LiteralWord());
        ra.Skip(1);
        ++words_emitted;
      }
    }
  }
  if (keep_b_tail) {
    while (rb.HasNext()) {
      if (rb.InRun()) {
        uint64_t n = rb.SegmentLength();
        out.AddEmptyWords(rb.RunBit(), n);
        rb.Skip(n);
        words_emitted += n;
      } else {
        emit_word(rb.LiteralWord());
        rb.Skip(1);
        ++words_emitted;
      }
    }
  }

  EwahBitmap result;
  result.buffer_ = std::move(out.buffer_);
  result.size_in_bits_ = std::max(a.size_in_bits_, b.size_in_bits_);
  return result;
}

EwahBitmap EwahBitmap::And(const EwahBitmap& other) const {
  return BinaryMerge(*this, other, BinaryOp::kAnd);
}
EwahBitmap EwahBitmap::Or(const EwahBitmap& other) const {
  return BinaryMerge(*this, other, BinaryOp::kOr);
}
EwahBitmap EwahBitmap::Xor(const EwahBitmap& other) const {
  return BinaryMerge(*this, other, BinaryOp::kXor);
}
EwahBitmap EwahBitmap::AndNot(const EwahBitmap& other) const {
  return BinaryMerge(*this, other, BinaryOp::kAndNot);
}

uint64_t EwahBitmap::AndCardinality(const EwahBitmap& other) const {
  Reader ra(buffer_);
  Reader rb(other.buffer_);
  uint64_t count = 0;
  while (ra.HasNext() && rb.HasNext()) {
    if (ra.InRun() && rb.InRun()) {
      uint64_t n = std::min(ra.SegmentLength(), rb.SegmentLength());
      if (ra.RunBit() && rb.RunBit()) count += 64 * n;
      ra.Skip(n);
      rb.Skip(n);
    } else if (ra.InRun()) {
      if (ra.RunBit()) count += std::popcount(rb.LiteralWord());
      rb.Skip(1);
      ra.Skip(1);
    } else if (rb.InRun()) {
      if (rb.RunBit()) count += std::popcount(ra.LiteralWord());
      ra.Skip(1);
      rb.Skip(1);
    } else {
      count += std::popcount(ra.LiteralWord() & rb.LiteralWord());
      ra.Skip(1);
      rb.Skip(1);
    }
  }
  return count;
}

bool EwahBitmap::Intersects(const EwahBitmap& other) const {
  Reader ra(buffer_);
  Reader rb(other.buffer_);
  while (ra.HasNext() && rb.HasNext()) {
    if (ra.InRun() && rb.InRun()) {
      uint64_t n = std::min(ra.SegmentLength(), rb.SegmentLength());
      if (ra.RunBit() && rb.RunBit()) return true;
      ra.Skip(n);
      rb.Skip(n);
    } else if (ra.InRun()) {
      if (ra.RunBit() && rb.LiteralWord() != 0) return true;
      rb.Skip(1);
      ra.Skip(1);
    } else if (rb.InRun()) {
      if (rb.RunBit() && ra.LiteralWord() != 0) return true;
      ra.Skip(1);
      rb.Skip(1);
    } else {
      if ((ra.LiteralWord() & rb.LiteralWord()) != 0) return true;
      ra.Skip(1);
      rb.Skip(1);
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

uint64_t EwahBitmap::Cardinality() const {
  uint64_t count = 0;
  size_t pos = 0;
  while (pos < buffer_.size()) {
    uint64_t marker = buffer_[pos];
    ++pos;
    if (MarkerRunBit(marker)) count += 64 * MarkerRunLength(marker);
    uint64_t lits = MarkerLiteralCount(marker);
    for (uint64_t i = 0; i < lits; ++i) {
      count += std::popcount(buffer_[pos]);
      ++pos;
    }
  }
  return count;
}

void EwahBitmap::ForEach(const std::function<void(uint64_t)>& fn) const {
  size_t pos = 0;
  uint64_t word_index = 0;
  while (pos < buffer_.size()) {
    uint64_t marker = buffer_[pos];
    ++pos;
    uint64_t run = MarkerRunLength(marker);
    if (MarkerRunBit(marker)) {
      for (uint64_t w = 0; w < run; ++w) {
        uint64_t base = (word_index + w) * 64;
        for (int j = 0; j < 64; ++j) fn(base + j);
      }
    }
    word_index += run;
    uint64_t lits = MarkerLiteralCount(marker);
    for (uint64_t i = 0; i < lits; ++i) {
      uint64_t w = buffer_[pos];
      ++pos;
      uint64_t base = word_index * 64;
      while (w != 0) {
        int j = std::countr_zero(w);
        fn(base + j);
        w &= w - 1;
      }
      ++word_index;
    }
  }
}

std::vector<uint64_t> EwahBitmap::ToIndices() const {
  std::vector<uint64_t> out;
  ForEach([&out](uint64_t pos) { out.push_back(pos); });
  return out;
}

bool EwahBitmap::Get(uint64_t pos) const {
  uint64_t target_word = pos >> 6;
  size_t p = 0;
  uint64_t word_index = 0;
  while (p < buffer_.size()) {
    uint64_t marker = buffer_[p];
    ++p;
    uint64_t run = MarkerRunLength(marker);
    if (target_word < word_index + run) return MarkerRunBit(marker);
    word_index += run;
    uint64_t lits = MarkerLiteralCount(marker);
    if (target_word < word_index + lits) {
      uint64_t w = buffer_[p + (target_word - word_index)];
      return (w >> (pos & 63)) & 1ULL;
    }
    p += lits;
    word_index += lits;
  }
  return false;
}

bool EwahBitmap::operator==(const EwahBitmap& other) const {
  Reader ra(buffer_);
  Reader rb(other.buffer_);
  while (ra.HasNext() && rb.HasNext()) {
    if (ra.InRun() && rb.InRun()) {
      if (ra.RunBit() != rb.RunBit()) return false;
      uint64_t n = std::min(ra.SegmentLength(), rb.SegmentLength());
      ra.Skip(n);
      rb.Skip(n);
    } else if (ra.InRun()) {
      uint64_t expect = ra.RunBit() ? kAllOnes : 0ULL;
      if (rb.LiteralWord() != expect) return false;
      ra.Skip(1);
      rb.Skip(1);
    } else if (rb.InRun()) {
      uint64_t expect = rb.RunBit() ? kAllOnes : 0ULL;
      if (ra.LiteralWord() != expect) return false;
      ra.Skip(1);
      rb.Skip(1);
    } else {
      if (ra.LiteralWord() != rb.LiteralWord()) return false;
      ra.Skip(1);
      rb.Skip(1);
    }
  }
  // The longer tail must be all zeros.
  for (Reader* r : {&ra, &rb}) {
    while (r->HasNext()) {
      if (r->InRun()) {
        if (r->RunBit()) return false;
        r->Skip(r->SegmentLength());
      } else {
        if (r->LiteralWord() != 0) return false;
        r->Skip(1);
      }
    }
  }
  return true;
}

uint64_t EwahBitmap::Hash() const {
  uint64_t h = 0x5CB3E5CB3E5CB3E5ULL;
  size_t pos = 0;
  uint64_t word_index = 0;
  while (pos < buffer_.size()) {
    uint64_t marker = buffer_[pos];
    ++pos;
    uint64_t run = MarkerRunLength(marker);
    if (MarkerRunBit(marker)) {
      for (uint64_t w = 0; w < run; ++w) {
        h = MixHash(h, word_index + w);
        h = MixHash(h, kAllOnes);
      }
    }
    word_index += run;
    uint64_t lits = MarkerLiteralCount(marker);
    for (uint64_t i = 0; i < lits; ++i) {
      uint64_t w = buffer_[pos];
      ++pos;
      if (w != 0) {
        h = MixHash(h, word_index);
        h = MixHash(h, w);
      }
      ++word_index;
    }
  }
  return h;
}

std::string EwahBitmap::DebugString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](uint64_t pos) {
    if (!first) out += ",";
    out += std::to_string(pos);
    first = false;
  });
  out += "}";
  return out;
}

}  // namespace scube
