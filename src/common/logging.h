// Minimal leveled logger. Single global sink (stderr by default); thread-safe.

#ifndef SCUBE_COMMON_LOGGING_H_
#define SCUBE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace scube {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Silences all output (used by tests and benchmarks).
void SetLogQuiet(bool quiet);

/// Wall-clock timestamp with millisecond precision, UTC:
/// "2026-08-08T14:03:21.042Z". Shared by log lines and the slow-query
/// log's JSON records.
std::string FormatWallTimestampMillis();

/// Small sequential id of the calling thread (1, 2, 3, … in first-log
/// order) — readable request interleaving without 16-digit pthread ids.
int CurrentThreadLogId();

namespace internal {

/// Stream-style log statement collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SCUBE_LOG(level)                                             \
  ::scube::internal::LogMessage(::scube::LogLevel::k##level, __FILE__, \
                                __LINE__)

/// Fatal-on-false invariant check, active in all build types.
#define SCUBE_CHECK(cond)                                                \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::scube::internal::CheckFailed(#cond, __FILE__, __LINE__);         \
    }                                                                    \
  } while (false)

namespace internal {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);
}  // namespace internal

}  // namespace scube

#endif  // SCUBE_COMMON_LOGGING_H_
