// Status: error-handling primitive used across the SCube public API.
//
// SCube follows the database-engine idiom (RocksDB/Arrow): no exceptions
// cross a public API boundary. Fallible operations return a Status (or a
// Result<T>, see result.h) that callers must inspect.

#ifndef SCUBE_COMMON_STATUS_H_
#define SCUBE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace scube {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kParseError,
  kUnimplemented,
  kInternal,
  kUnavailable,        ///< transient overload: retry later (admission shed)
  kDeadlineExceeded,   ///< the caller's deadline passed before completion
};

/// Returns a stable human-readable name for a status code, e.g. "IOError".
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: a code plus a contextual message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is only allocated on error paths).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The failure category (kOk on success).
  StatusCode code() const { return code_; }

  /// The contextual message (empty on success).
  const std::string& message() const { return message_; }

  /// Returns e.g. "InvalidArgument: minsup must be positive".
  std::string ToString() const;

  /// Prepends context to the message, keeping the code. No-op when OK.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller. Usable only in functions that
/// themselves return Status.
#define SCUBE_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::scube::Status _scube_status = (expr);         \
    if (!_scube_status.ok()) return _scube_status;  \
  } while (false)

}  // namespace scube

#endif  // SCUBE_COMMON_STATUS_H_
