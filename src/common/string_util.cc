#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace scube {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::ParseError("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::ParseError("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::ParseError("empty double");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::ParseError("double out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in double: " + buf);
  }
  return v;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatWithCommas(int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonQuote(std::string_view s) {
  std::string out = "\"";
  out += JsonEscape(s);
  out += '"';
  return out;
}

}  // namespace scube
