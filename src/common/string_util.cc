#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace scube {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::ParseError("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::ParseError("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::ParseError("empty double");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::ParseError("double out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in double: " + buf);
  }
  return v;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatWithCommas(int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

Result<uint64_t> ParseHexU64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty hex string");
  uint64_t value = 0;
  for (char c : s) {
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      return Status::InvalidArgument("invalid hex character");
    }
    if (value > (UINT64_MAX >> 4)) {
      return Status::InvalidArgument("hex value overflows uint64");
    }
    value = (value << 4) | static_cast<uint64_t>(v);
  }
  return value;
}

namespace {

constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Value of one base64 character; -1 for non-alphabet bytes.
int Base64Value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

std::string Base64Encode(std::string_view s) {
  std::string out;
  out.reserve((s.size() + 2) / 3 * 4);
  size_t i = 0;
  for (; i + 3 <= s.size(); i += 3) {
    uint32_t v = (static_cast<uint8_t>(s[i]) << 16) |
                 (static_cast<uint8_t>(s[i + 1]) << 8) |
                 static_cast<uint8_t>(s[i + 2]);
    out += kBase64Alphabet[(v >> 18) & 0x3F];
    out += kBase64Alphabet[(v >> 12) & 0x3F];
    out += kBase64Alphabet[(v >> 6) & 0x3F];
    out += kBase64Alphabet[v & 0x3F];
  }
  size_t rest = s.size() - i;
  if (rest == 1) {
    uint32_t v = static_cast<uint8_t>(s[i]) << 16;
    out += kBase64Alphabet[(v >> 18) & 0x3F];
    out += kBase64Alphabet[(v >> 12) & 0x3F];
    out += "==";
  } else if (rest == 2) {
    uint32_t v = (static_cast<uint8_t>(s[i]) << 16) |
                 (static_cast<uint8_t>(s[i + 1]) << 8);
    out += kBase64Alphabet[(v >> 18) & 0x3F];
    out += kBase64Alphabet[(v >> 12) & 0x3F];
    out += kBase64Alphabet[(v >> 6) & 0x3F];
    out += '=';
  }
  return out;
}

Result<std::string> Base64Decode(std::string_view s) {
  if (s.size() % 4 != 0) {
    return Status::InvalidArgument("base64 length not a multiple of 4");
  }
  std::string out;
  out.reserve(s.size() / 4 * 3);
  for (size_t i = 0; i < s.size(); i += 4) {
    int pad = 0;
    uint32_t v = 0;
    for (size_t j = 0; j < 4; ++j) {
      char c = s[i + j];
      if (c == '=') {
        // Padding is only valid in the last one or two positions of the
        // final group.
        if (i + 4 != s.size() || j < 2) {
          return Status::InvalidArgument("base64 padding misplaced");
        }
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) {
        return Status::InvalidArgument("base64 data after padding");
      }
      int value = Base64Value(c);
      if (value < 0) {
        return Status::InvalidArgument("invalid base64 character");
      }
      v = (v << 6) | static_cast<uint32_t>(value);
    }
    out += static_cast<char>((v >> 16) & 0xFF);
    if (pad < 2) out += static_cast<char>((v >> 8) & 0xFF);
    if (pad < 1) out += static_cast<char>(v & 0xFF);
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonQuote(std::string_view s) {
  std::string out = "\"";
  out += JsonEscape(s);
  out += '"';
  return out;
}

}  // namespace scube
