#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace scube {

namespace {
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SCUBE_CHECK(bound > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (~bound + 1) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SCUBE_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  have_gaussian_ = true;
  return r * std::cos(theta);
}

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  SCUBE_CHECK(total > 0);
  double draw = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (draw < acc) return i;
  }
  return weights.size() - 1;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  SCUBE_CHECK(n > 0);
  // Rejection-inversion (Hörmann-Derflinger style, simplified).
  if (n == 1) return 1;
  double b = std::pow(2.0, s - 1.0);
  while (true) {
    double u = NextDouble();
    double v = NextDouble();
    uint64_t x = static_cast<uint64_t>(
        std::floor(std::pow(static_cast<double>(n) + 1.0, u)));
    if (x < 1) x = 1;
    if (x > n) continue;
    double t = std::pow((static_cast<double>(x) + 1.0) / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) return x;
  }
}

Rng Rng::Fork() { return Rng(Next()); }

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  size_t n = weights.size();
  SCUBE_CHECK(n > 0);
  double total = 0;
  for (double w : weights) {
    SCUBE_CHECK(w >= 0);
    total += w;
  }
  SCUBE_CHECK(total > 0);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;
  std::vector<uint32_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t AliasSampler::Sample(Rng* rng) const {
  size_t i = rng->NextBounded(prob_.size());
  return rng->NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace scube
