#include "viz/report.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace scube {
namespace viz {

namespace {

// All items of the given attribute name, sorted by value.
std::vector<fpm::ItemId> AttributeItems(const relational::ItemCatalog& catalog,
                                        const std::string& attr_name) {
  std::vector<fpm::ItemId> items;
  for (fpm::ItemId item = 0; item < catalog.size(); ++item) {
    if (catalog.info(item).attr_name == attr_name) items.push_back(item);
  }
  std::sort(items.begin(), items.end(),
            [&catalog](fpm::ItemId a, fpm::ItemId b) {
              return catalog.info(a).value < catalog.info(b).value;
            });
  return items;
}

std::string Pad(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace

Result<std::string> RenderPivotTable(const cube::CubeView& view,
                                     const PivotSpec& spec) {
  const auto& catalog = view.catalog();
  std::vector<fpm::ItemId> row_items =
      AttributeItems(catalog, spec.sa_attribute);
  std::vector<fpm::ItemId> col_items =
      AttributeItems(catalog, spec.ca_attribute);
  if (row_items.empty()) {
    return Status::NotFound("no items for SA attribute '" +
                            spec.sa_attribute + "'");
  }
  if (col_items.empty()) {
    return Status::NotFound("no items for CA attribute '" +
                            spec.ca_attribute + "'");
  }

  // Row/column headers, "*" last.
  std::vector<std::string> row_labels, col_labels;
  for (fpm::ItemId item : row_items) {
    row_labels.push_back(catalog.info(item).value);
  }
  row_labels.push_back("*");
  for (fpm::ItemId item : col_items) {
    col_labels.push_back(catalog.info(item).value);
  }
  col_labels.push_back("*");

  std::string corner = spec.sa_attribute + "\\" + spec.ca_attribute;
  size_t label_width = corner.size();
  for (const std::string& l : row_labels) {
    label_width = std::max(label_width, l.size());
  }
  label_width += 2;
  size_t cell_width = 8;
  for (const std::string& l : col_labels) {
    cell_width = std::max(cell_width, l.size() + 2);
  }

  std::string out;
  out += Pad(corner, label_width);
  for (const std::string& l : col_labels) out += Pad(l, cell_width);
  out += "\n";

  for (size_t r = 0; r <= row_items.size(); ++r) {
    fpm::Itemset sa = spec.fixed_sa;
    if (r < row_items.size()) sa = sa.With(row_items[r]);
    out += Pad(row_labels[r], label_width);
    for (size_t c = 0; c <= col_items.size(); ++c) {
      fpm::Itemset ca = spec.fixed_ca;
      if (c < col_items.size()) ca = ca.With(col_items[c]);
      const cube::CubeCell* cell = view.Find(sa, ca);
      std::string text = "-";
      if (cell != nullptr && cell->indexes.defined) {
        text = FormatDouble(cell->indexes[spec.index], 2);
      }
      out += Pad(text, cell_width);
    }
    out += "\n";
  }
  return out;
}

std::string RenderTopContexts(const cube::CubeView& view,
                              indexes::IndexKind kind, size_t k,
                              const cube::ExplorerOptions& options) {
  auto top = cube::TopSegregatedContexts(view, kind, k, options);
  std::string out;
  out += Pad("#", 4) + Pad(indexes::IndexKindToString(kind), 16) +
         Pad("T", 9) + Pad("M", 9) + "context\n";
  size_t rank = 1;
  for (const cube::RankedCell& rc : top) {
    out += Pad(std::to_string(rank), 4) +
           Pad(FormatDouble(rc.value, 4), 16) +
           Pad(std::to_string(rc.cell->context_size), 9) +
           Pad(std::to_string(rc.cell->minority_size), 9) +
           view.LabelOf(rc.cell->coords) + "\n";
    ++rank;
  }
  return out;
}

std::string RenderCellSummary(const cube::CubeView& view,
                              const cube::CubeCell& cell) {
  std::string out = view.LabelOf(cell.coords) + "\n";
  out += "  T=" + FormatWithCommas(static_cast<int64_t>(cell.context_size)) +
         " M=" + FormatWithCommas(static_cast<int64_t>(cell.minority_size)) +
         " units=" + std::to_string(cell.num_units) + "\n";
  if (!cell.indexes.defined) {
    out += "  (indexes undefined: degenerate minority)\n";
    return out;
  }
  for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
    out += "  " + Pad(indexes::IndexKindToString(kind), 15) +
           FormatDouble(cell.indexes[kind], 4) + "\n";
  }
  return out;
}

std::string RenderQueryResult(const query::QueryResult& result) {
  if (result.rows.empty()) return "(no cells)\n";

  // Column set: fixed cell columns, the queried index, then whichever
  // verb-specific columns the result carries.
  std::vector<std::string> headers{"sa", "ca", "T", "M",
                                   "units",
                                   indexes::IndexKindToString(result.by)};
  if (result.has_value) headers.push_back("value");
  if (result.has_aux) headers.push_back(result.aux_name);
  if (result.has_aux2) headers.push_back(result.aux2_name);
  if (result.has_tag) headers.push_back(result.tag_name);

  std::vector<std::vector<std::string>> grid;
  grid.reserve(result.rows.size());
  for (const query::ResultRow& row : result.rows) {
    std::vector<std::string> line{
        row.sa,
        row.ca,
        std::to_string(row.t),
        std::to_string(row.m),
        std::to_string(row.units),
        row.defined
            ? FormatDouble(row.indexes[static_cast<size_t>(result.by)], 4)
            : "-",
    };
    if (result.has_value) line.push_back(FormatDouble(row.value, 4));
    if (result.has_aux) line.push_back(FormatDouble(row.aux, 4));
    if (result.has_aux2) line.push_back(FormatDouble(row.aux2, 4));
    if (result.has_tag) line.push_back(row.tag);
    grid.push_back(std::move(line));
  }

  std::vector<size_t> widths(headers.size());
  for (size_t c = 0; c < headers.size(); ++c) {
    widths[c] = headers[c].size();
    for (const auto& line : grid) {
      widths[c] = std::max(widths[c], line[c].size());
    }
    widths[c] += 2;
  }

  std::string out;
  for (size_t c = 0; c < headers.size(); ++c) {
    out += Pad(headers[c], widths[c]);
  }
  out += "\n";
  for (const auto& line : grid) {
    for (size_t c = 0; c < line.size(); ++c) out += Pad(line[c], widths[c]);
    out += "\n";
  }
  if (!result.next_cursor.empty()) {
    out += "(more rows beyond LIMIT; resume with cursor " +
           result.next_cursor + ")\n";
  }
  return out;
}

}  // namespace viz
}  // namespace scube
