// Text reports: the Fig. 1-style pivot grid and top-k context listings used
// by the examples, benches and the wizard. All renderers read a sealed,
// immutable cube::CubeView (build -> seal -> render).

#ifndef SCUBE_VIZ_REPORT_H_
#define SCUBE_VIZ_REPORT_H_

#include <string>

#include "common/result.h"
#include "cube/cube_view.h"
#include "cube/explorer.h"
#include "query/query_result.h"

namespace scube {
namespace viz {

/// \brief A 2-D pivot over the cube: rows are values of one SA attribute
/// (plus ⋆), columns values of one CA attribute (plus ⋆); extra fixed
/// coordinates select the slab (e.g. Fig. 1 fixes age=young on a second SA
/// dimension).
struct PivotSpec {
  std::string sa_attribute;  ///< e.g. "gender"
  std::string ca_attribute;  ///< e.g. "residence_region"
  indexes::IndexKind index = indexes::IndexKind::kDissimilarity;
  fpm::Itemset fixed_sa;  ///< additional SA coordinates applied to all cells
  fpm::Itemset fixed_ca;  ///< additional CA coordinates applied to all cells
};

/// Renders the pivot as a fixed-width text grid; absent or undefined cells
/// show "-" (the dashes of Fig. 1).
Result<std::string> RenderPivotTable(const cube::CubeView& view,
                                     const PivotSpec& spec);

/// Renders the top-k most segregated contexts as a text table.
std::string RenderTopContexts(const cube::CubeView& view,
                              indexes::IndexKind kind, size_t k,
                              const cube::ExplorerOptions& options);

/// Renders the six indexes of one cell as "name value" lines.
std::string RenderCellSummary(const cube::CubeView& view,
                              const cube::CubeCell& cell);

/// Renders a SCubeQL answer as a fixed-width text table: subgroup,
/// context, T, M, units, the queried index ("-" when undefined) and any
/// verb-specific columns (value / delta / direction ...). The REPL's
/// output format.
std::string RenderQueryResult(const query::QueryResult& result);

}  // namespace viz
}  // namespace scube

#endif  // SCUBE_VIZ_REPORT_H_
