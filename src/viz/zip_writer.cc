#include "viz/zip_writer.h"

#include <array>

#include "common/csv.h"

namespace scube {
namespace viz {

namespace {

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  return kTable;
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

}  // namespace

uint32_t Crc32(const std::string& data) {
  const auto& table = CrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void ZipWriter::AddFile(const std::string& name, const std::string& content) {
  entries_.push_back(Entry{name, content, Crc32(content)});
}

std::string ZipWriter::Serialize() const {
  std::string out;
  std::vector<uint32_t> offsets;
  offsets.reserve(entries_.size());

  // Local file headers + data.
  for (const Entry& e : entries_) {
    offsets.push_back(static_cast<uint32_t>(out.size()));
    PutU32(&out, 0x04034B50u);                       // local header signature
    PutU16(&out, 20);                                // version needed
    PutU16(&out, 0);                                 // flags
    PutU16(&out, 0);                                 // method: stored
    PutU16(&out, 0);                                 // mod time
    PutU16(&out, 0x21);                              // mod date (1980-01-01)
    PutU32(&out, e.crc);
    PutU32(&out, static_cast<uint32_t>(e.content.size()));  // compressed
    PutU32(&out, static_cast<uint32_t>(e.content.size()));  // uncompressed
    PutU16(&out, static_cast<uint16_t>(e.name.size()));
    PutU16(&out, 0);                                 // extra length
    out += e.name;
    out += e.content;
  }

  // Central directory.
  uint32_t cd_offset = static_cast<uint32_t>(out.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    PutU32(&out, 0x02014B50u);  // central directory signature
    PutU16(&out, 20);           // version made by
    PutU16(&out, 20);           // version needed
    PutU16(&out, 0);            // flags
    PutU16(&out, 0);            // method
    PutU16(&out, 0);            // time
    PutU16(&out, 0x21);         // date
    PutU32(&out, e.crc);
    PutU32(&out, static_cast<uint32_t>(e.content.size()));
    PutU32(&out, static_cast<uint32_t>(e.content.size()));
    PutU16(&out, static_cast<uint16_t>(e.name.size()));
    PutU16(&out, 0);  // extra
    PutU16(&out, 0);  // comment
    PutU16(&out, 0);  // disk
    PutU16(&out, 0);  // internal attrs
    PutU32(&out, 0);  // external attrs
    PutU32(&out, offsets[i]);
    out += e.name;
  }
  uint32_t cd_size = static_cast<uint32_t>(out.size()) - cd_offset;

  // End of central directory.
  PutU32(&out, 0x06054B50u);
  PutU16(&out, 0);  // this disk
  PutU16(&out, 0);  // cd disk
  PutU16(&out, static_cast<uint16_t>(entries_.size()));
  PutU16(&out, static_cast<uint16_t>(entries_.size()));
  PutU32(&out, cd_size);
  PutU32(&out, cd_offset);
  PutU16(&out, 0);  // comment length
  return out;
}

Status ZipWriter::Save(const std::string& path) const {
  return WriteStringToFile(path, Serialize());
}

}  // namespace viz
}  // namespace scube
