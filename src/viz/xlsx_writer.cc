#include "viz/xlsx_writer.h"

#include <cmath>

#include "common/string_util.h"
#include "viz/zip_writer.h"

namespace scube {
namespace viz {

std::string XlsxWriter::CellRef(size_t row, size_t col) {
  std::string letters;
  size_t c = col;
  while (true) {
    letters.insert(letters.begin(), static_cast<char>('A' + (c % 26)));
    if (c < 26) break;
    c = c / 26 - 1;
  }
  return letters + std::to_string(row + 1);
}

std::string XlsxWriter::XmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<XlsxWriter::Sheet*> XlsxWriter::AddSheet(const std::string& name) {
  if (name.empty() || name.size() > 31) {
    return Status::InvalidArgument("sheet name must be 1-31 characters");
  }
  for (char c : name) {
    if (c == '[' || c == ']' || c == '\\' || c == '/' || c == '*' ||
        c == '?' || c == ':') {
      return Status::InvalidArgument("sheet name contains forbidden "
                                     "character");
    }
  }
  for (const Sheet& s : sheets_) {
    if (s.name() == name) {
      return Status::AlreadyExists("duplicate sheet name: " + name);
    }
  }
  sheets_.emplace_back(name);
  return &sheets_.back();
}

namespace {

std::string SheetXml(const XlsxWriter::Sheet& sheet,
                     const std::vector<std::vector<XlsxValue>>& rows) {
  std::string xml =
      "<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"yes\"?>\n"
      "<worksheet xmlns=\"http://schemas.openxmlformats.org/"
      "spreadsheetml/2006/main\"><sheetData>";
  for (size_t r = 0; r < rows.size(); ++r) {
    xml += "<row r=\"" + std::to_string(r + 1) + "\">";
    for (size_t c = 0; c < rows[r].size(); ++c) {
      const XlsxValue& value = rows[r][c];
      std::string ref = XlsxWriter::CellRef(r, c);
      if (std::holds_alternative<std::string>(value)) {
        xml += "<c r=\"" + ref + "\" t=\"inlineStr\"><is><t>" +
               XlsxWriter::XmlEscape(std::get<std::string>(value)) +
               "</t></is></c>";
      } else if (std::holds_alternative<double>(value)) {
        double v = std::get<double>(value);
        if (std::isfinite(v)) {
          xml += "<c r=\"" + ref + "\"><v>" + FormatDouble(v, 10) +
                 "</v></c>";
        } else {
          xml += "<c r=\"" + ref + "\" t=\"inlineStr\"><is><t>NaN</t></is>"
                 "</c>";
        }
      } else {
        xml += "<c r=\"" + ref + "\"><v>" +
               std::to_string(std::get<int64_t>(value)) + "</v></c>";
      }
    }
    xml += "</row>";
  }
  xml += "</sheetData></worksheet>";
  (void)sheet;
  return xml;
}

}  // namespace

Result<std::string> XlsxWriter::Serialize() const {
  if (sheets_.empty()) {
    return Status::FailedPrecondition("workbook has no sheets");
  }
  ZipWriter zip;

  std::string content_types =
      "<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"yes\"?>\n"
      "<Types xmlns=\"http://schemas.openxmlformats.org/package/2006/"
      "content-types\">"
      "<Default Extension=\"rels\" ContentType=\"application/vnd."
      "openxmlformats-package.relationships+xml\"/>"
      "<Default Extension=\"xml\" ContentType=\"application/xml\"/>"
      "<Override PartName=\"/xl/workbook.xml\" ContentType=\"application/"
      "vnd.openxmlformats-officedocument.spreadsheetml.sheet.main+xml\"/>";
  for (size_t i = 0; i < sheets_.size(); ++i) {
    content_types +=
        "<Override PartName=\"/xl/worksheets/sheet" + std::to_string(i + 1) +
        ".xml\" ContentType=\"application/vnd.openxmlformats-officedocument."
        "spreadsheetml.worksheet+xml\"/>";
  }
  content_types += "</Types>";
  zip.AddFile("[Content_Types].xml", content_types);

  zip.AddFile(
      "_rels/.rels",
      "<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"yes\"?>\n"
      "<Relationships xmlns=\"http://schemas.openxmlformats.org/package/"
      "2006/relationships\">"
      "<Relationship Id=\"rId1\" Type=\"http://schemas.openxmlformats.org/"
      "officeDocument/2006/relationships/officeDocument\" "
      "Target=\"xl/workbook.xml\"/></Relationships>");

  std::string workbook =
      "<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"yes\"?>\n"
      "<workbook xmlns=\"http://schemas.openxmlformats.org/spreadsheetml/"
      "2006/main\" xmlns:r=\"http://schemas.openxmlformats.org/"
      "officeDocument/2006/relationships\"><sheets>";
  std::string workbook_rels =
      "<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"yes\"?>\n"
      "<Relationships xmlns=\"http://schemas.openxmlformats.org/package/"
      "2006/relationships\">";
  for (size_t i = 0; i < sheets_.size(); ++i) {
    std::string sid = std::to_string(i + 1);
    workbook += "<sheet name=\"" + XmlEscape(sheets_[i].name()) +
                "\" sheetId=\"" + sid + "\" r:id=\"rId" + sid + "\"/>";
    workbook_rels +=
        "<Relationship Id=\"rId" + sid + "\" Type=\"http://schemas."
        "openxmlformats.org/officeDocument/2006/relationships/worksheet\" "
        "Target=\"worksheets/sheet" + sid + ".xml\"/>";
  }
  workbook += "</sheets></workbook>";
  workbook_rels += "</Relationships>";
  zip.AddFile("xl/workbook.xml", workbook);
  zip.AddFile("xl/_rels/workbook.xml.rels", workbook_rels);

  for (size_t i = 0; i < sheets_.size(); ++i) {
    zip.AddFile("xl/worksheets/sheet" + std::to_string(i + 1) + ".xml",
                SheetXml(sheets_[i], sheets_[i].rows_));
  }
  return zip.Serialize();
}

Status XlsxWriter::Save(const std::string& path) const {
  auto bytes = Serialize();
  if (!bytes.ok()) return bytes.status();
  return WriteStringToFile(path, bytes.value());
}

Status WriteCubeXlsx(const cube::CubeView& view,
                     const std::string& path) {
  XlsxWriter writer;
  auto cube_sheet = writer.AddSheet("cube");
  if (!cube_sheet.ok()) return cube_sheet.status();

  std::vector<XlsxValue> header{std::string("subgroup"),
                                std::string("context"), std::string("T"),
                                std::string("M"), std::string("units")};
  for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
    header.emplace_back(std::string(indexes::IndexKindToString(kind)));
  }
  cube_sheet.value()->AddRow(header);

  for (const cube::CubeCell& cell : view.Cells()) {
    std::vector<XlsxValue> row{
        view.catalog().LabelSet(cell.coords.sa),
        view.catalog().LabelSet(cell.coords.ca),
        static_cast<int64_t>(cell.context_size),
        static_cast<int64_t>(cell.minority_size),
        static_cast<int64_t>(cell.num_units),
    };
    for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
      if (cell.indexes.defined) {
        row.emplace_back(cell.indexes[kind]);
      } else {
        row.emplace_back(std::string("-"));
      }
    }
    cube_sheet.value()->AddRow(row);
  }

  auto summary = writer.AddSheet("summary");
  if (!summary.ok()) return summary.status();
  summary.value()->AddRow({std::string("cells"),
                           static_cast<int64_t>(view.NumCells())});
  summary.value()->AddRow({std::string("defined cells"),
                           static_cast<int64_t>(view.NumDefinedCells())});
  summary.value()->AddRow({std::string("organizational units"),
                           static_cast<int64_t>(view.unit_labels().size())});
  return writer.Save(path);
}

}  // namespace viz
}  // namespace scube
