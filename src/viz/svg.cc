#include "viz/svg.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/string_util.h"
#include "viz/xlsx_writer.h"  // XmlEscape

namespace scube {
namespace viz {

namespace {
std::string Num(double v) { return FormatDouble(v, 2); }
}  // namespace

SvgCanvas::SvgCanvas(double width, double height)
    : width_(width), height_(height) {}

void SvgCanvas::Line(double x1, double y1, double x2, double y2,
                     const std::string& stroke, double stroke_width) {
  body_ += "<line x1=\"" + Num(x1) + "\" y1=\"" + Num(y1) + "\" x2=\"" +
           Num(x2) + "\" y2=\"" + Num(y2) + "\" stroke=\"" + stroke +
           "\" stroke-width=\"" + Num(stroke_width) + "\"/>\n";
}

void SvgCanvas::Circle(double cx, double cy, double r, const std::string& fill,
                       const std::string& stroke) {
  body_ += "<circle cx=\"" + Num(cx) + "\" cy=\"" + Num(cy) + "\" r=\"" +
           Num(r) + "\" fill=\"" + fill + "\" stroke=\"" + stroke + "\"/>\n";
}

void SvgCanvas::Rect(double x, double y, double w, double h,
                     const std::string& fill, const std::string& stroke) {
  body_ += "<rect x=\"" + Num(x) + "\" y=\"" + Num(y) + "\" width=\"" +
           Num(w) + "\" height=\"" + Num(h) + "\" fill=\"" + fill +
           "\" stroke=\"" + stroke + "\"/>\n";
}

void SvgCanvas::Polygon(const std::vector<double>& points,
                        const std::string& fill, double fill_opacity,
                        const std::string& stroke) {
  body_ += "<polygon points=\"";
  for (size_t i = 0; i + 1 < points.size(); i += 2) {
    if (i > 0) body_ += " ";
    body_ += Num(points[i]) + "," + Num(points[i + 1]);
  }
  body_ += "\" fill=\"" + fill + "\" fill-opacity=\"" + Num(fill_opacity) +
           "\" stroke=\"" + stroke + "\"/>\n";
}

void SvgCanvas::Text(double x, double y, const std::string& text, double size,
                     const std::string& anchor, const std::string& fill) {
  body_ += "<text x=\"" + Num(x) + "\" y=\"" + Num(y) + "\" font-size=\"" +
           Num(size) + "\" text-anchor=\"" + anchor + "\" fill=\"" + fill +
           "\" font-family=\"sans-serif\">" + XlsxWriter::XmlEscape(text) +
           "</text>\n";
}

std::string SvgCanvas::Finish() const {
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<svg xmlns=\"http://"
         "www.w3.org/2000/svg\" width=\"" +
         Num(width_) + "\" height=\"" + Num(height_) + "\" viewBox=\"0 0 " +
         Num(width_) + " " + Num(height_) + "\">\n" + body_ + "</svg>\n";
}

std::string HeatColor(double v) {
  v = std::clamp(v, 0.0, 1.0);
  int r = 255;
  int g = static_cast<int>(std::lround(255.0 * (1.0 - 0.85 * v)));
  int b = static_cast<int>(std::lround(255.0 * (1.0 - 0.95 * v)));
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02X%02X%02X", r, g, b);
  return buf;
}

Result<std::string> RenderRadialChart(const RadialChartSpec& spec) {
  if (spec.axes.size() < 3) {
    return Status::InvalidArgument("radial chart needs at least 3 axes");
  }
  for (const RadialSeries& s : spec.series) {
    if (s.values.size() != spec.axes.size()) {
      return Status::InvalidArgument("series '" + s.name + "' has " +
                                     std::to_string(s.values.size()) +
                                     " values, chart has " +
                                     std::to_string(spec.axes.size()) +
                                     " axes");
    }
  }
  const double size = spec.size;
  SvgCanvas canvas(size, size + 40.0 + 16.0 * spec.series.size());
  const double cx = size / 2.0, cy = size / 2.0 + 24.0;
  const double radius = size * 0.36;
  const size_t n = spec.axes.size();

  canvas.Text(cx, 18, spec.title, 15, "middle");

  auto point = [&](size_t axis, double v) {
    double angle = -M_PI / 2.0 + 2.0 * M_PI * axis / static_cast<double>(n);
    return std::pair<double, double>(cx + radius * v * std::cos(angle),
                                     cy + radius * v * std::sin(angle));
  };

  // Rings at 0.25 steps.
  for (int ring = 1; ring <= 4; ++ring) {
    double v = ring / 4.0;
    std::vector<double> pts;
    for (size_t a = 0; a < n; ++a) {
      auto [x, y] = point(a, v);
      pts.push_back(x);
      pts.push_back(y);
    }
    canvas.Polygon(pts, "none", 0.0, "#CCCCCC");
    canvas.Text(cx + 4, cy - radius * v - 2, FormatDouble(v, 2), 9, "start",
                "#999");
  }
  // Axes + labels.
  for (size_t a = 0; a < n; ++a) {
    auto [x, y] = point(a, 1.0);
    canvas.Line(cx, cy, x, y, "#BBBBBB");
    auto [lx, ly] = point(a, 1.13);
    std::string anchor = lx < cx - 4 ? "end" : (lx > cx + 4 ? "start"
                                                            : "middle");
    canvas.Text(lx, ly + 3, spec.axes[a], 10, anchor);
  }
  // Series polygons.
  for (const RadialSeries& s : spec.series) {
    std::vector<double> pts;
    for (size_t a = 0; a < n; ++a) {
      auto [x, y] = point(a, std::clamp(s.values[a], 0.0, 1.0));
      pts.push_back(x);
      pts.push_back(y);
    }
    canvas.Polygon(pts, s.color, 0.25, s.color);
  }
  // Legend.
  double ly = size + 16.0;
  for (const RadialSeries& s : spec.series) {
    canvas.Rect(24, ly - 9, 12, 12, s.color);
    canvas.Text(42, ly + 1, s.name, 11);
    ly += 16.0;
  }
  return canvas.Finish();
}

Result<std::string> RenderBarChart(const BarChartSpec& spec) {
  if (spec.bars.empty()) {
    return Status::InvalidArgument("bar chart needs at least one bar");
  }
  const double row_height = 22.0;
  const double label_width = 160.0;
  const double chart_width = spec.width - label_width - 80.0;
  const double height = 40.0 + row_height * spec.bars.size();
  SvgCanvas canvas(spec.width, height);
  canvas.Text(spec.width / 2.0, 18, spec.title, 15, "middle");
  for (size_t i = 0; i < spec.bars.size(); ++i) {
    const auto& [name, value] = spec.bars[i];
    double y = 34.0 + row_height * i;
    double w = chart_width * std::clamp(value, 0.0, 1.0);
    canvas.Text(label_width - 8, y + 13, name, 11, "end");
    canvas.Rect(label_width, y + 3, w, row_height - 8, spec.color);
    canvas.Text(label_width + w + 6, y + 13, FormatDouble(value, 3), 10);
  }
  return canvas.Finish();
}

Result<std::string> RenderLineChart(const LineChartSpec& spec) {
  if (spec.x_labels.size() < 2) {
    return Status::InvalidArgument("line chart needs at least two x points");
  }
  if (spec.y_max <= 0.0) {
    return Status::InvalidArgument("y_max must be positive");
  }
  for (const LineSeries& s : spec.series) {
    if (s.values.size() != spec.x_labels.size()) {
      return Status::InvalidArgument("series '" + s.name +
                                     "' length mismatches x axis");
    }
  }
  const double kMarginLeft = 56.0, kMarginRight = 24.0;
  const double kMarginTop = 36.0, kMarginBottom = 48.0;
  const double plot_w = spec.width - kMarginLeft - kMarginRight;
  const double plot_h = spec.height - kMarginTop - kMarginBottom;
  SvgCanvas canvas(spec.width, spec.height + 16.0 * spec.series.size());
  canvas.Text(spec.width / 2.0, 20, spec.title, 14, "middle");

  auto x_of = [&](size_t i) {
    return kMarginLeft +
           plot_w * static_cast<double>(i) /
               static_cast<double>(spec.x_labels.size() - 1);
  };
  auto y_of = [&](double v) {
    return kMarginTop + plot_h * (1.0 - std::clamp(v, 0.0, spec.y_max) /
                                            spec.y_max);
  };

  // Axes and horizontal gridlines.
  canvas.Line(kMarginLeft, kMarginTop, kMarginLeft, kMarginTop + plot_h,
              "#444");
  canvas.Line(kMarginLeft, kMarginTop + plot_h, kMarginLeft + plot_w,
              kMarginTop + plot_h, "#444");
  for (int g = 0; g <= 4; ++g) {
    double v = spec.y_max * g / 4.0;
    canvas.Line(kMarginLeft, y_of(v), kMarginLeft + plot_w, y_of(v),
                "#DDDDDD");
    canvas.Text(kMarginLeft - 6, y_of(v) + 4, FormatDouble(v, 2), 9, "end");
  }
  // Sparse x labels.
  size_t step = std::max<size_t>(1, spec.x_labels.size() / 8);
  for (size_t i = 0; i < spec.x_labels.size(); i += step) {
    canvas.Text(x_of(i), kMarginTop + plot_h + 16, spec.x_labels[i], 9,
                "middle");
  }
  // Series polylines (as thin line segments) + markers.
  for (const LineSeries& s : spec.series) {
    for (size_t i = 0; i + 1 < s.values.size(); ++i) {
      canvas.Line(x_of(i), y_of(s.values[i]), x_of(i + 1),
                  y_of(s.values[i + 1]), s.color, 2.0);
    }
    for (size_t i = 0; i < s.values.size(); ++i) {
      canvas.Circle(x_of(i), y_of(s.values[i]), 2.2, s.color);
    }
  }
  // Legend.
  double ly = spec.height + 4.0;
  for (const LineSeries& s : spec.series) {
    canvas.Rect(kMarginLeft, ly - 8, 12, 12, s.color);
    canvas.Text(kMarginLeft + 18, ly + 2, s.name, 11);
    ly += 16.0;
  }
  return canvas.Finish();
}

Result<std::string> RenderTileMap(const TileMapSpec& spec) {
  if (spec.tiles.empty()) {
    return Status::InvalidArgument("tile map needs at least one tile");
  }
  if (spec.columns == 0) {
    return Status::InvalidArgument("columns must be >= 1");
  }
  size_t rows = (spec.tiles.size() + spec.columns - 1) / spec.columns;
  double width = 24.0 * 2 + spec.tile_size * spec.columns;
  double height = 64.0 + spec.tile_size * rows + 40.0;
  SvgCanvas canvas(width, height);
  canvas.Text(width / 2.0, 24, spec.title, 15, "middle");
  for (size_t i = 0; i < spec.tiles.size(); ++i) {
    const auto& [name, value] = spec.tiles[i];
    double x = 24.0 + spec.tile_size * (i % spec.columns);
    double y = 44.0 + spec.tile_size * (i / spec.columns);
    canvas.Rect(x + 2, y + 2, spec.tile_size - 4, spec.tile_size - 4,
                HeatColor(value), "#888");
    canvas.Text(x + spec.tile_size / 2.0, y + spec.tile_size / 2.0 - 4, name,
                10, "middle");
    canvas.Text(x + spec.tile_size / 2.0, y + spec.tile_size / 2.0 + 12,
                FormatDouble(value, 3), 10, "middle");
  }
  // Legend ramp.
  double ly = 52.0 + spec.tile_size * rows;
  for (int i = 0; i <= 20; ++i) {
    canvas.Rect(24.0 + i * 8.0, ly, 8.0, 12.0, HeatColor(i / 20.0));
  }
  canvas.Text(24.0, ly + 26, "0.0", 10);
  canvas.Text(24.0 + 20 * 8.0, ly + 26, "1.0", 10, "end");
  return canvas.Finish();
}

}  // namespace viz
}  // namespace scube
