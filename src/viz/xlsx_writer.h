// XlsxWriter: minimal-but-valid OOXML SpreadsheetML workbook writer — the
// Visualizer output of SCube ("a standard OOXML format that can be opened by
// Microsoft Excel, Libre Office, and other office productivity tools").
//
// Strings are written as inline strings (no shared-string table); numbers as
// native numeric cells. One worksheet per AddSheet call.

#ifndef SCUBE_VIZ_XLSX_WRITER_H_
#define SCUBE_VIZ_XLSX_WRITER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "cube/cube_view.h"

namespace scube {
namespace viz {

/// A spreadsheet cell value.
using XlsxValue = std::variant<std::string, double, int64_t>;

/// \brief Workbook builder.
class XlsxWriter {
 public:
  /// \brief One worksheet.
  class Sheet {
   public:
    explicit Sheet(std::string name) : name_(std::move(name)) {}

    /// Appends one row of cells.
    void AddRow(std::vector<XlsxValue> cells) {
      rows_.push_back(std::move(cells));
    }

    const std::string& name() const { return name_; }
    size_t NumRows() const { return rows_.size(); }

   private:
    friend class XlsxWriter;
    std::string name_;
    std::vector<std::vector<XlsxValue>> rows_;
  };

  /// Adds a sheet (names must be unique, 1-31 chars, no []\/*?: characters).
  Result<Sheet*> AddSheet(const std::string& name);

  size_t NumSheets() const { return sheets_.size(); }

  /// Serialises the workbook to .xlsx bytes.
  Result<std::string> Serialize() const;

  /// Writes the workbook to a file.
  Status Save(const std::string& path) const;

  /// Spreadsheet cell reference: (0,0) -> "A1", (1,27) -> "AB2".
  static std::string CellRef(size_t row, size_t col);

  /// XML-escapes text content.
  static std::string XmlEscape(const std::string& text);

 private:
  // deque: stable Sheet* across AddSheet calls.
  std::deque<Sheet> sheets_;
};

/// Exports a sealed segregation cube as `scube.xlsx`: a "cube" sheet with
/// one row per cell (labels, T, M, units, all six indexes) and a "summary"
/// sheet.
Status WriteCubeXlsx(const cube::CubeView& view, const std::string& path);

}  // namespace viz
}  // namespace scube

#endif  // SCUBE_VIZ_XLSX_WRITER_H_
