// ZipWriter: minimal ZIP container (stored entries, CRC-32) — the carrier
// format of OOXML .xlsx files. From-scratch replacement for the Apache POI
// dependency of the Java original.

#ifndef SCUBE_VIZ_ZIP_WRITER_H_
#define SCUBE_VIZ_ZIP_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace scube {
namespace viz {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte string.
uint32_t Crc32(const std::string& data);

/// \brief Builds a ZIP archive in memory; entries are stored uncompressed
/// (valid per the ZIP spec; OOXML consumers accept stored entries).
class ZipWriter {
 public:
  /// Appends a file entry. `name` uses forward slashes ("xl/workbook.xml").
  void AddFile(const std::string& name, const std::string& content);

  size_t NumEntries() const { return entries_.size(); }

  /// Serialises local headers, central directory and end record.
  std::string Serialize() const;

  /// Writes the archive to disk.
  Status Save(const std::string& path) const;

 private:
  struct Entry {
    std::string name;
    std::string content;
    uint32_t crc;
  };
  std::vector<Entry> entries_;
};

}  // namespace viz
}  // namespace scube

#endif  // SCUBE_VIZ_ZIP_WRITER_H_
