// SVG chart rendering: the radial plot of Fig. 5 (bottom), bar charts, and
// the province tile map standing in for the map overlay of Fig. 3 (right).

#ifndef SCUBE_VIZ_SVG_H_
#define SCUBE_VIZ_SVG_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace scube {
namespace viz {

/// \brief Low-level SVG element builder.
class SvgCanvas {
 public:
  SvgCanvas(double width, double height);

  void Line(double x1, double y1, double x2, double y2,
            const std::string& stroke, double stroke_width = 1.0);
  void Circle(double cx, double cy, double r, const std::string& fill,
              const std::string& stroke = "none");
  void Rect(double x, double y, double w, double h, const std::string& fill,
            const std::string& stroke = "none");
  /// `points` = {x1,y1,x2,y2,...}; closed polygon.
  void Polygon(const std::vector<double>& points, const std::string& fill,
               double fill_opacity, const std::string& stroke);
  void Text(double x, double y, const std::string& text, double size = 12.0,
            const std::string& anchor = "start",
            const std::string& fill = "#222");

  /// Completes the document.
  std::string Finish() const;

 private:
  double width_, height_;
  std::string body_;
};

/// \brief One radial-chart series (e.g. one segregation index over the 20
/// sectors, or one sector over the six indexes).
struct RadialSeries {
  std::string name;
  std::vector<double> values;  ///< in [0,1], one per axis
  std::string color;           ///< e.g. "#c0392b"
};

/// \brief Radial (spider) chart specification.
struct RadialChartSpec {
  std::string title;
  std::vector<std::string> axes;  ///< axis labels, clockwise from 12 o'clock
  std::vector<RadialSeries> series;
  double size = 640.0;
};

/// Renders a radial plot; fails if a series length mismatches the axes.
Result<std::string> RenderRadialChart(const RadialChartSpec& spec);

/// \brief Horizontal bar chart of labelled values in [0,1].
struct BarChartSpec {
  std::string title;
  std::vector<std::pair<std::string, double>> bars;
  std::string color = "#2980b9";
  double width = 720.0;
};

Result<std::string> RenderBarChart(const BarChartSpec& spec);

/// \brief Tile map: one coloured square per named area (provinces of
/// Fig. 3); colour encodes the value via a white-to-red ramp.
struct TileMapSpec {
  std::string title;
  std::vector<std::pair<std::string, double>> tiles;  ///< (name, value in [0,1])
  size_t columns = 5;
  double tile_size = 96.0;
};

Result<std::string> RenderTileMap(const TileMapSpec& spec);

/// \brief Line chart of one or more series over a shared x axis (time
/// series of segregation indexes).
struct LineSeries {
  std::string name;
  std::vector<double> values;  ///< same length as LineChartSpec::x_labels
  std::string color;
};

struct LineChartSpec {
  std::string title;
  std::vector<std::string> x_labels;  ///< e.g. years
  std::vector<LineSeries> series;
  double width = 720.0;
  double height = 360.0;
  double y_max = 1.0;  ///< y axis spans [0, y_max]
};

Result<std::string> RenderLineChart(const LineChartSpec& spec);

/// Linear white->red colour ramp for v in [0,1] ("#rrggbb").
std::string HeatColor(double v);

}  // namespace viz
}  // namespace scube

#endif  // SCUBE_VIZ_SVG_H_
