#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>

namespace scube {
namespace net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<size_t> Socket::Read(char* buf, size_t n) {
  if (!valid()) return Status::IoError("read on closed socket");
  while (true) {
    ssize_t got = ::recv(fd_, buf, n, 0);
    if (got >= 0) return static_cast<size_t>(got);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Distinguishable from hard I/O errors: the server's idle poll tick.
      return Status::DeadlineExceeded("receive timed out");
    }
    return Status::IoError(Errno("recv"));
  }
}

Status Socket::WriteAll(std::string_view data) {
  if (!valid()) return Status::IoError("write on closed socket");
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-response yields EPIPE, not a
    // process-killing SIGPIPE.
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

IoResult Socket::ReadNonBlocking(char* buf, size_t n) {
  IoResult result;
  if (!valid()) {
    result.status = Status::IoError("read on closed socket");
    return result;
  }
  while (true) {
    ssize_t got = ::recv(fd_, buf, n, 0);
    if (got > 0) {
      result.outcome = IoOutcome::kReady;
      result.bytes = static_cast<size_t>(got);
      return result;
    }
    if (got == 0) {
      result.outcome = IoOutcome::kEof;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.outcome = IoOutcome::kWouldBlock;
      return result;
    }
    result.status = Status::IoError(Errno("recv"));
    return result;
  }
}

IoResult Socket::WriteNonBlocking(std::string_view data) {
  IoResult result;
  if (!valid()) {
    result.status = Status::IoError("write on closed socket");
    return result;
  }
  while (true) {
    ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) {
      result.outcome = IoOutcome::kReady;
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.outcome = IoOutcome::kWouldBlock;
      return result;
    }
    result.status = Status::IoError(Errno("send"));
    return result;
  }
}

namespace {

Status SetFdNonBlocking(int fd, bool enabled, const char* what) {
  if (fd < 0) {
    return Status::IoError(std::string(what) + " on closed socket");
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::IoError(Errno("fcntl(F_GETFL)"));
  int want = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
    return Status::IoError(Errno("fcntl(F_SETFL)"));
  }
  return Status::OK();
}

}  // namespace

Status Socket::SetNonBlocking(bool enabled) {
  return SetFdNonBlocking(fd_, enabled, "nonblocking");
}

Status Socket::SetRecvTimeout(double seconds) {
  if (!valid()) return Status::IoError("timeout on closed socket");
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      std::lround((seconds - static_cast<double>(tv.tv_sec)) * 1e6));
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IoError(Errno("setsockopt(SO_RCVTIMEO)"));
  }
  return Status::OK();
}

Status Socket::SetNoDelay() {
  if (!valid()) return Status::IoError("nodelay on closed socket");
  int one = 1;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Status::IoError(Errno("setsockopt(TCP_NODELAY)"));
  }
  return Status::OK();
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Result<ListenSocket> ListenSocket::Bind(uint16_t port, bool loopback_only,
                                        int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(Errno("socket"));

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::IoError(
        Errno("bind to port " + std::to_string(port)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = Status::IoError(Errno("listen"));
    ::close(fd);
    return status;
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    Status status = Status::IoError(Errno("getsockname"));
    ::close(fd);
    return status;
  }

  ListenSocket out;
  out.fd_ = fd;
  out.port_ = ntohs(addr.sin_port);
  return out;
}

Result<Socket> ListenSocket::Accept() {
  if (!valid()) return Status::IoError("accept on closed listener");
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Status::IoError(Errno("accept"));
  }
}

IoOutcome ListenSocket::TryAccept(Socket* out, Status* error) {
  if (!valid()) {
    *error = Status::IoError("accept on closed listener");
    return IoOutcome::kError;
  }
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      *out = Socket(fd);
      return IoOutcome::kReady;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      // ECONNABORTED: the peer gave up while queued — nothing to hand
      // out now; a level-triggered poll re-reports any remaining backlog.
      return IoOutcome::kWouldBlock;
    }
    *error = Status::IoError(Errno("accept"));
    return IoOutcome::kError;
  }
}

Status ListenSocket::SetNonBlocking(bool enabled) {
  return SetFdNonBlocking(fd_, enabled, "nonblocking");
}

void ListenSocket::ShutdownAccept() {
  if (fd_ >= 0) {
    // shutdown() wakes a concurrent blocking accept() (Linux returns
    // EINVAL from it); close() alone does not reliably — and closing here
    // would free the fd number for reuse while accept() still holds it.
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Connect(const std::string& host, uint16_t port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0) {
    return Status::IoError("getaddrinfo(" + host + "): " + gai_strerror(rc));
  }

  Status last = Status::IoError("no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IoError(Errno("socket"));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      return Socket(fd);
    }
    last = Status::IoError(Errno("connect to " + host + ":" +
                                 std::to_string(port)));
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

namespace {

/// One non-blocking connect attempt to a resolved address, polled up to
/// `timeout_ms`. Returns the connected fd, or -1 with `*error` set.
int ConnectOneWithTimeout(struct addrinfo* ai, int timeout_ms,
                          Status* error) {
  int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
  if (fd < 0) {
    *error = Status::IoError(Errno("socket"));
    return -1;
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    *error = Status::IoError(Errno("fcntl"));
    ::close(fd);
    return -1;
  }
  int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
  if (rc != 0 && errno != EINPROGRESS) {
    *error = Status::IoError(Errno("connect"));
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      *error = Status::DeadlineExceeded("connect timed out");
      ::close(fd);
      return -1;
    }
    if (rc < 0) {
      *error = Status::IoError(Errno("poll"));
      ::close(fd);
      return -1;
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 ||
        soerr != 0) {
      errno = soerr != 0 ? soerr : errno;
      *error = Status::IoError(Errno("connect"));
      ::close(fd);
      return -1;
    }
  }
  // Back to blocking: Read/WriteAll expect it (read timeouts come from
  // SetRecvTimeout, not O_NONBLOCK).
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    *error = Status::IoError(Errno("fcntl"));
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

Result<Socket> ConnectWithTimeout(const std::string& host, uint16_t port,
                                  double timeout_s) {
  if (timeout_s <= 0) return Connect(host, port);
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0) {
    return Status::IoError("getaddrinfo(" + host + "): " + gai_strerror(rc));
  }
  const int timeout_ms =
      static_cast<int>(std::lround(std::max(1.0, timeout_s * 1000.0)));
  Status last = Status::IoError("no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ConnectOneWithTimeout(ai, timeout_ms, &last);
    if (fd >= 0) {
      ::freeaddrinfo(res);
      return Socket(fd);
    }
  }
  ::freeaddrinfo(res);
  if (!last.ok() && last.code() != StatusCode::kDeadlineExceeded) {
    last = Status::IoError("connect to " + host + ":" +
                           std::to_string(port) + ": " + last.message());
  }
  return last;
}

}  // namespace net
}  // namespace scube
