// Portable TCP sockets for the scubed serving front-end.
//
// Thin RAII wrappers over POSIX sockets: a connected Socket (read/write),
// a ListenSocket (bind/listen/accept, port 0 = kernel-assigned), and a
// loopback Connect() for clients, benches and tests. The default calls
// are blocking — the threaded front-end's concurrency lives in its thread
// pool — with optional receive timeouts so a stuck peer cannot pin a
// connection thread forever. The reactor front-end instead switches fds
// into non-blocking mode (SetNonBlocking) and drives them through the
// single-attempt ReadNonBlocking / WriteNonBlocking / TryAccept calls,
// whose IoResult distinguishes would-block from EOF and hard errors.

#ifndef SCUBE_NET_SOCKET_H_
#define SCUBE_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace scube {
namespace net {

/// Outcome of one non-blocking I/O attempt.
enum class IoOutcome {
  kReady,       ///< progress made: IoResult::bytes transferred
  kWouldBlock,  ///< no progress now — wait for readiness and retry
  kEof,         ///< orderly peer shutdown (reads only)
  kError,       ///< hard failure: IoResult::status carries the errno
};

/// \brief Result of one ReadNonBlocking / WriteNonBlocking attempt.
/// Partial writes are normal (kReady with bytes < requested).
struct IoResult {
  IoOutcome outcome = IoOutcome::kError;
  size_t bytes = 0;
  Status status;  ///< non-OK only when outcome == kError
};

/// \brief A connected TCP socket (RAII over the fd). Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads up to `n` bytes; 0 = orderly peer shutdown. Retries EINTR.
  /// DeadlineExceeded on a receive timeout (the server's idle poll tick
  /// branches on this code), IoError on any other failure.
  Result<size_t> Read(char* buf, size_t n);

  /// Writes all of `data`, retrying partial writes and EINTR.
  Status WriteAll(std::string_view data);

  /// One read attempt that never blocks once the fd is in non-blocking
  /// mode: kReady (bytes > 0), kWouldBlock, kEof, or kError.
  IoResult ReadNonBlocking(char* buf, size_t n);

  /// One write attempt; kReady reports how many bytes the kernel took
  /// (possibly fewer than data.size()), kWouldBlock a full send buffer.
  IoResult WriteNonBlocking(std::string_view data);

  /// Switches the fd between blocking and non-blocking mode.
  Status SetNonBlocking(bool enabled);

  /// Bounds every subsequent Read to `seconds` (0 = no timeout).
  Status SetRecvTimeout(double seconds);

  /// Disables Nagle's algorithm (small request/response round trips).
  Status SetNoDelay();

  /// Closes the fd (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// \brief A listening TCP socket bound to 127.0.0.1 or all interfaces.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds and listens. `port` 0 asks the kernel for an ephemeral port
  /// (read it back via port()). `loopback_only` binds 127.0.0.1.
  static Result<ListenSocket> Bind(uint16_t port, bool loopback_only = false,
                                   int backlog = 128);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// The bound port (the kernel-assigned one when Bind got 0).
  uint16_t port() const { return port_; }

  /// Blocks until a connection arrives; IoError once ShutdownAccept()
  /// (or Close()) has been called.
  Result<Socket> Accept();

  /// One accept attempt for an event loop (put the listener in
  /// non-blocking mode first). kReady moves the connection into `*out`;
  /// kWouldBlock means nothing is pending; kError fills `*error`.
  IoOutcome TryAccept(Socket* out, Status* error);

  /// Switches the listening fd between blocking and non-blocking mode.
  Status SetNonBlocking(bool enabled);

  /// Wakes any blocked Accept() without closing the fd. Safe to call
  /// from a thread other than the acceptor while Accept() is in flight —
  /// the fd stays allocated (no reuse hazard) until Close() runs after
  /// the acceptor thread is joined. Idempotent.
  void ShutdownAccept();

  /// Closes the fd. NOT safe concurrently with a blocked Accept(): call
  /// ShutdownAccept() first, join the acceptor, then Close(). Idempotent
  /// (also runs on destruction).
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to `host:port` (numeric IPv4 or a resolvable name).
Result<Socket> Connect(const std::string& host, uint16_t port);

/// Connect bounded by a wall-clock timeout: non-blocking connect + poll,
/// the socket handed back in blocking mode. DeadlineExceeded when the
/// timeout passes before the connection establishes; `timeout_s <= 0`
/// degrades to the blocking Connect. The shard client pool uses this so
/// one dead backend cannot stall a whole scatter fan-out for the kernel's
/// multi-minute SYN retry budget.
Result<Socket> ConnectWithTimeout(const std::string& host, uint16_t port,
                                  double timeout_s);

}  // namespace net
}  // namespace scube

#endif  // SCUBE_NET_SOCKET_H_
