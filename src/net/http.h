// Minimal HTTP/1.1 for the scubed front-end: blocking request/response
// parsing over a buffered socket reader, keep-alive handling, target
// (path + query-parameter) decoding, and chunked transfer encoding on the
// *response* side (ChunkedWriter for streamed answers; the client reader
// decodes chunked bodies). Deliberately small: no chunked request bodies
// (411 when a request body has no Content-Length), no TLS, no multipart —
// scubed speaks plain HTTP to load balancers, curl and the bench/test
// clients in this repo.
//
// The same BufferedReader drives the newline-delimited line protocol:
// SniffsAsHttp() looks at the first line to pick the dialect.

#ifndef SCUBE_NET_HTTP_H_
#define SCUBE_NET_HTTP_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/trace.h"
#include "net/socket.h"

namespace scube {
namespace net {

/// \brief Buffered line/byte reader over a blocking socket.
class BufferedReader {
 public:
  explicit BufferedReader(Socket* socket) : socket_(socket) {}

  /// Reads one line up to and including '\n', stripping "\r\n" / "\n".
  /// IoError on EOF before any byte, on a line longer than `max_len`, or
  /// on socket error/timeout.
  Result<std::string> ReadLine(size_t max_len = 64 * 1024);

  /// Reads exactly `n` bytes into `out` (replacing its contents).
  Status ReadExact(size_t n, std::string* out);

  /// Reads exactly `n` bytes, appending to `out` — lets chunked bodies
  /// accumulate without an intermediate per-chunk copy.
  Status ReadExactAppend(size_t n, std::string* out);

  /// True once the peer closed and the buffer is drained (peeks one byte).
  bool AtEof();

  /// Returns the buffered-but-unconsumed bytes, reading from the socket
  /// once when none are buffered. An empty view means orderly EOF.
  Result<std::string_view> PeekSome();

  /// Discards `n` bytes previously returned by PeekSome.
  void Advance(size_t n);

  /// Caps the total wall time of all subsequent reads: once `deadline`
  /// passes, reads fail with DeadlineExceeded even if the peer keeps
  /// trickling bytes. This is the slow-loris bound — a per-read
  /// SetRecvTimeout alone is defeated by one byte per timeout window.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
  }
  void clear_deadline() { deadline_.reset(); }

 private:
  Status Fill();  ///< one recv into the buffer

  Socket* socket_;
  std::string buf_;
  size_t pos_ = 0;
  bool eof_ = false;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
};

/// \brief One parsed HTTP/1.1 request.
struct HttpRequest {
  std::string method;  ///< upper-case, e.g. "GET"
  std::string target;  ///< raw request target, e.g. "/query?format=csv"
  std::string path;    ///< decoded path component, e.g. "/query"
  std::map<std::string, std::string> params;   ///< decoded query parameters
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;
  bool keep_alive = true;  ///< HTTP/1.1 default unless "Connection: close"

  /// Wall-clock bounds of reading this request off the socket (first
  /// byte to parse complete), stamped by the connection front-end so
  /// handlers can record a retroactive "conn.read" trace span. Both at
  /// the epoch when the front-end does not track read time.
  std::chrono::steady_clock::time_point read_start{};
  std::chrono::steady_clock::time_point read_end{};

  /// Case-insensitive header lookup; "" when absent.
  const std::string& Header(const std::string& lower_name) const;

  /// Query parameter lookup with default.
  std::string Param(const std::string& name,
                    const std::string& fallback = "") const;
};

/// \brief One HTTP response under construction.
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  std::string content_type = "application/json";

  HttpResponse() = default;
  HttpResponse(int status_code, std::string body_text)
      : status(status_code), body(std::move(body_text)) {}

  void SetHeader(const std::string& name, const std::string& value) {
    headers.emplace_back(name, value);
  }
};

/// The standard reason phrase for a status code ("OK", "Not Found", ...).
const char* StatusReason(int status);

/// True when `first_line` looks like an HTTP request line (METHOD SP ...
/// SP HTTP/1.x) — the dialect sniff between HTTP and the line protocol.
bool SniffsAsHttp(std::string_view first_line);

/// \brief Incremental HTTP/1.1 request parser: feed it bytes as they
/// arrive off a non-blocking socket (partial lines, split headers, body
/// fragments) and it consumes exactly one message, stopping at the
/// boundary so pipelined follow-up bytes stay with the caller. Same
/// grammar, limits and error messages as the blocking ReadHttpRequest —
/// which is built on it, so the two paths cannot drift.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(size_t max_body = 4 * 1024 * 1024);

  /// Consumes bytes from `data`, returning how many were used. Everything
  /// is consumed except bytes past the end of a completed (or failed)
  /// message.
  size_t Feed(std::string_view data);

  bool done() const { return state_ == State::kDone; }
  bool failed() const { return state_ == State::kError; }
  const Status& status() const { return status_; }

  /// True while reading the body — the "READ_BODY" connection state, and
  /// the EOF-mid-body diagnostic (body_received / body_expected).
  bool in_body() const { return state_ == State::kBody; }
  size_t body_received() const { return request_.body.size(); }
  size_t body_expected() const { return body_expected_; }

  /// The parsed request; valid once done().
  HttpRequest& request() { return request_; }

  /// Resets for the next message on a keep-alive connection.
  void Reset();

 private:
  enum class State { kRequestLine, kHeaders, kBody, kDone, kError };

  void ConsumeLine(const std::string& line);
  void Fail(Status status);
  void FinishHeaders();

  size_t max_body_;
  State state_ = State::kRequestLine;
  Status status_;
  HttpRequest request_;
  std::string line_;  ///< partial line accumulated across Feed calls
  size_t header_count_ = 0;
  size_t body_expected_ = 0;
};

/// Parses the request whose request line was already consumed, reading
/// headers and body from `reader`. Limits: `max_body` bytes (413 beyond).
Result<HttpRequest> ReadHttpRequest(BufferedReader* reader,
                                    const std::string& request_line,
                                    size_t max_body = 4 * 1024 * 1024);

/// Serialises a response with Content-Length and Connection headers.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// Serialises only the status line + headers (no body bytes). With
/// `chunked` the framing header is `Transfer-Encoding: chunked` and
/// Content-Length is never emitted — mixing the two desyncs keep-alive
/// connections; without it, Content-Length is taken from response.body.
std::string SerializeResponseHead(const HttpResponse& response,
                                  bool keep_alive, bool chunked);

/// \brief Incremental HTTP/1.1 chunked-transfer response writer: the wire
/// side of a streamed answer. Bytes go out through a raw write callback
/// (the socket, or a string in tests); payload is coalesced into chunks of
/// up to `flush_bytes`, so the response buffer stays O(flush_bytes) no
/// matter how large the body is — that bound is the whole point of the
/// streaming read path.
///
/// Usage: WriteHead once, Write any number of times, Finish once. After
/// Finish the connection is exactly at a message boundary and keep-alive
/// continues normally.
class ChunkedWriter {
 public:
  /// Raw byte sink. A non-OK return aborts the stream: subsequent calls
  /// become no-ops and Finish reports the failure.
  using WriteFn = std::function<Status(std::string_view)>;

  static constexpr size_t kDefaultFlushBytes = 16 * 1024;

  explicit ChunkedWriter(WriteFn write,
                         size_t flush_bytes = kDefaultFlushBytes);

  /// Attaches a trace (null = off): WriteHead records a "wire.head" span
  /// and every non-empty Flush a "wire.flush" span, so a trace shows how
  /// much of a streamed request went to socket writes.
  void set_trace(trace::TraceContext* trace) { trace_ = trace; }

  /// Writes the status line + headers with Transfer-Encoding: chunked.
  /// The head is flushed immediately so the client's first byte does not
  /// wait for the first body chunk (time-to-first-byte).
  Status WriteHead(const HttpResponse& head, bool keep_alive);

  /// Buffers payload, emitting a chunk whenever `flush_bytes` accumulate.
  Status Write(std::string_view data);

  /// Emits any buffered payload as a chunk now.
  Status Flush();

  /// Flushes, then writes the terminal 0-length chunk. Idempotent.
  Status Finish();

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Largest number of payload bytes ever buffered — the peak response
  /// buffer, reported by /metrics and the serving bench to demonstrate
  /// O(1) buffering.
  size_t peak_buffer_bytes() const { return peak_buffer_; }

  /// Wire bytes written so far (head + chunk framing + payload).
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Status Emit(std::string_view raw);  ///< raw wire write, latching failure

  WriteFn write_;
  size_t flush_bytes_;
  trace::TraceContext* trace_ = nullptr;
  std::string buffer_;
  size_t peak_buffer_ = 0;
  uint64_t bytes_written_ = 0;
  bool head_written_ = false;
  bool finished_ = false;
  Status status_;
};

/// Splits a request target into decoded path + query parameters.
void ParseTarget(std::string_view target, std::string* path,
                 std::map<std::string, std::string>* params);

/// Percent-decoding ('+' becomes a space, bad escapes pass through).
std::string UrlDecode(std::string_view s);

/// \brief Parsed HTTP response (the client side, for benches and tests).
struct HttpClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;
};

/// Reads one full response from `reader` (status line, headers, body by
/// Content-Length, chunked bodies decoded — trailer headers folded into
/// `headers`; bodies with neither framing read to EOF).
Result<HttpClientResponse> ReadHttpResponse(BufferedReader* reader);

/// Same, when the status line was already consumed (clients measuring
/// time-to-first-byte read the status line themselves first).
Result<HttpClientResponse> ReadHttpResponseAfterStatusLine(
    BufferedReader* reader, const std::string& status_line);

/// One-shot client helper: sends `method target` with `body` over an open
/// connection and reads the response. Sets Content-Length; keeps the
/// connection reusable (keep-alive).
Result<HttpClientResponse> RoundTrip(Socket* socket, BufferedReader* reader,
                                     const std::string& method,
                                     const std::string& target,
                                     const std::string& body = "",
                                     const std::string& content_type =
                                         "text/plain");

/// \brief Client-side timeouts and retry policy (shard client pool).
struct ClientOptions {
  /// Bound on establishing a TCP connection (ConnectWithTimeout).
  double connect_timeout_s = 5.0;

  /// Receive timeout applied to the connection (SetRecvTimeout); bounds
  /// every read of the response. 0 = unbounded.
  double read_timeout_s = 10.0;

  /// Total tries per round trip (1 = no retry). Retries reconnect: a
  /// request that failed mid-transport leaves the connection desynced.
  int max_attempts = 3;

  /// Exponential backoff between retries, doubling from `initial` and
  /// capped at `max`.
  int backoff_initial_ms = 50;
  int backoff_max_ms = 1000;
};

/// \brief A pooled keep-alive client connection: the socket plus its
/// buffered reader (they must live and die together — the reader may hold
/// read-ahead bytes and points at the socket, so the struct must stay at
/// a fixed address while connected; pools hold it by unique_ptr). Invalid
/// when not yet connected or torn down after a transport error.
struct ClientConnection {
  Socket socket;
  std::unique_ptr<BufferedReader> reader;

  ClientConnection() = default;
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  bool valid() const { return socket.valid() && reader != nullptr; }
  void Reset() {
    reader.reset();
    socket.Close();
  }
};

/// Connects `conn` in place per `options` (connect timeout, read timeout,
/// TCP_NODELAY) and wires up its reader. Any previous connection is torn
/// down first.
Status OpenClientConnection(const std::string& host, uint16_t port,
                            const ClientOptions& options,
                            ClientConnection* conn);

/// RoundTrip with connection management, timeouts and bounded
/// retry-with-backoff. Reuses `*conn` when connected (keep-alive),
/// (re)establishing it as needed; on transport failure the connection is
/// torn down and the attempt repeated on a fresh one after backoff, up to
/// options.max_attempts. A stale keep-alive connection (peer closed it
/// between requests) reconnects immediately without consuming an attempt.
/// Safe for scubed's read-only /query, /cubes and /metrics round trips —
/// re-sending them cannot double-apply anything.
Result<HttpClientResponse> RoundTripWithRetry(
    ClientConnection* conn, const std::string& host, uint16_t port,
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& content_type,
    const ClientOptions& options);

/// \brief Everything before a response body: status, headers, framing.
struct HttpResponseHead {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  bool chunked = false;      ///< Transfer-Encoding: chunked
  bool have_length = false;  ///< Content-Length present
  size_t length = 0;
};

/// Reads status line + headers, leaving the reader positioned at the
/// first body byte. The streaming scatter client reads the head, then
/// pulls body bytes incrementally through ChunkedBodyReader.
Result<HttpResponseHead> ReadHttpResponseHead(BufferedReader* reader);

/// \brief Incremental chunked-body decoder: one chunk per ReadSome call,
/// so a client can consume an arbitrarily long streamed response in O(1)
/// memory (the batch ReadHttpResponse materialises the whole body).
class ChunkedBodyReader {
 public:
  explicit ChunkedBodyReader(BufferedReader* reader) : reader_(reader) {}

  /// Appends the next chunk's payload to `out`. Returns false once the
  /// terminal chunk (and trailer section) has been consumed — the
  /// connection then sits exactly at the message boundary, reusable for
  /// keep-alive. Trailer headers are folded into trailers().
  Result<bool> ReadSome(std::string* out);

  bool done() const { return done_; }
  const std::map<std::string, std::string>& trailers() const {
    return trailers_;
  }

 private:
  BufferedReader* reader_;
  std::map<std::string, std::string> trailers_;
  bool done_ = false;
};

}  // namespace net
}  // namespace scube

#endif  // SCUBE_NET_HTTP_H_
