#include "net/http.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace scube {
namespace net {

namespace {

constexpr size_t kReadChunk = 16 * 1024;
constexpr size_t kMaxHeaderLines = 128;

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
          c == '_')) {
      return false;
    }
  }
  return true;
}

}  // namespace

Status BufferedReader::Fill() {
  if (eof_) return Status::OK();
  // Compact the consumed prefix before growing the buffer.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  size_t old = buf_.size();
  buf_.resize(old + kReadChunk);
  auto got = socket_->Read(buf_.data() + old, kReadChunk);
  if (!got.ok()) {
    buf_.resize(old);
    return got.status();
  }
  buf_.resize(old + *got);
  if (*got == 0) eof_ = true;
  return Status::OK();
}

Result<std::string> BufferedReader::ReadLine(size_t max_len) {
  while (true) {
    size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      std::string line = buf_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buf_.size() - pos_ > max_len) {
      return Status::IoError("line exceeds " + std::to_string(max_len) +
                             " bytes");
    }
    if (eof_) {
      if (pos_ < buf_.size()) {
        // Final unterminated line.
        std::string line = buf_.substr(pos_);
        pos_ = buf_.size();
        return line;
      }
      return Status::IoError("connection closed");
    }
    SCUBE_RETURN_IF_ERROR(Fill());
  }
}

Status BufferedReader::ReadExact(size_t n, std::string* out) {
  while (buf_.size() - pos_ < n) {
    if (eof_) {
      return Status::IoError("connection closed mid-body (" +
                             std::to_string(buf_.size() - pos_) + " of " +
                             std::to_string(n) + " bytes)");
    }
    SCUBE_RETURN_IF_ERROR(Fill());
  }
  out->assign(buf_, pos_, n);
  pos_ += n;
  return Status::OK();
}

bool BufferedReader::AtEof() {
  while (pos_ >= buf_.size() && !eof_) {
    if (!Fill().ok()) return true;
  }
  return pos_ >= buf_.size() && eof_;
}

const std::string& HttpRequest::Header(const std::string& lower_name) const {
  static const std::string kEmpty;
  auto it = headers.find(lower_name);
  return it == headers.end() ? kEmpty : it->second;
}

std::string HttpRequest::Param(const std::string& name,
                               const std::string& fallback) const {
  auto it = params.find(name);
  return it == params.end() ? fallback : it->second;
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

bool SniffsAsHttp(std::string_view first_line) {
  // METHOD SP target SP HTTP/1.x — enough to separate curl from a client
  // typing SCubeQL directly.
  size_t sp1 = first_line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  size_t sp2 = first_line.rfind(' ');
  if (sp2 == sp1) return false;
  return IsToken(first_line.substr(0, sp1)) &&
         first_line.substr(sp2 + 1).rfind("HTTP/1.", 0) == 0;
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < s.size() &&
               std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        return (std::tolower(static_cast<unsigned char>(h)) - 'a') + 10;
      };
      out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

void ParseTarget(std::string_view target, std::string* path,
                 std::map<std::string, std::string>* params) {
  size_t q = target.find('?');
  *path = UrlDecode(target.substr(0, q));
  params->clear();
  if (q == std::string_view::npos) return;
  std::string_view rest = target.substr(q + 1);
  while (!rest.empty()) {
    size_t amp = rest.find('&');
    std::string_view pair = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      (*params)[UrlDecode(pair)] = "";
    } else {
      (*params)[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
  }
}

Result<HttpRequest> ReadHttpRequest(BufferedReader* reader,
                                    const std::string& request_line,
                                    size_t max_body) {
  HttpRequest req;

  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return Status::ParseError("malformed request line: " + request_line);
  }
  req.method = request_line.substr(0, sp1);
  std::transform(req.method.begin(), req.method.end(), req.method.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  req.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string version = request_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    return Status::ParseError("unsupported protocol: " + version);
  }
  // HTTP/1.0 defaults to close, 1.1 to keep-alive.
  req.keep_alive = version != "HTTP/1.0";
  ParseTarget(req.target, &req.path, &req.params);

  bool headers_done = false;
  for (size_t i = 0; i < kMaxHeaderLines; ++i) {
    auto line = reader->ReadLine();
    if (!line.ok()) return line.status();
    if (line->empty()) {
      headers_done = true;
      break;
    }
    size_t colon = line->find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("malformed header: " + *line);
    }
    std::string name = ToLower(Trim(std::string_view(*line).substr(0, colon)));
    std::string value(Trim(std::string_view(*line).substr(colon + 1)));
    req.headers[name] = std::move(value);
  }
  if (!headers_done) {
    // Failing (rather than silently truncating) keeps the connection from
    // desyncing: leftover header bytes would otherwise be read as body.
    return Status::ParseError("more than " +
                              std::to_string(kMaxHeaderLines) + " headers");
  }

  const std::string& connection = req.Header("connection");
  if (!connection.empty()) {
    std::string lower = ToLower(connection);
    if (lower.find("close") != std::string::npos) req.keep_alive = false;
    if (lower.find("keep-alive") != std::string::npos) req.keep_alive = true;
  }

  const std::string& length = req.Header("content-length");
  if (!length.empty()) {
    auto n = ParseInt64(length);
    if (!n.ok() || *n < 0) {
      return Status::ParseError("bad Content-Length: " + length);
    }
    if (static_cast<size_t>(*n) > max_body) {
      return Status::InvalidArgument("request body of " + length +
                                     " bytes exceeds the limit of " +
                                     std::to_string(max_body));
    }
    SCUBE_RETURN_IF_ERROR(reader->ReadExact(static_cast<size_t>(*n),
                                            &req.body));
  } else if (!req.Header("transfer-encoding").empty()) {
    return Status::Unimplemented("chunked transfer encoding not supported");
  }
  return req;
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

Result<HttpClientResponse> ReadHttpResponse(BufferedReader* reader) {
  HttpClientResponse resp;
  auto status_line = reader->ReadLine();
  if (!status_line.ok()) return status_line.status();
  // "HTTP/1.1 200 OK"
  size_t sp1 = status_line->find(' ');
  if (sp1 == std::string::npos ||
      status_line->rfind("HTTP/", 0) != 0) {
    return Status::ParseError("malformed status line: " + *status_line);
  }
  auto code = ParseInt64(
      std::string_view(*status_line).substr(sp1 + 1, 3));
  if (!code.ok()) {
    return Status::ParseError("malformed status line: " + *status_line);
  }
  resp.status = static_cast<int>(*code);

  bool have_length = false;
  size_t length = 0;
  for (size_t i = 0; i < kMaxHeaderLines; ++i) {
    auto line = reader->ReadLine();
    if (!line.ok()) return line.status();
    if (line->empty()) break;
    size_t colon = line->find(':');
    if (colon == std::string::npos) continue;
    std::string name = ToLower(Trim(std::string_view(*line).substr(0, colon)));
    std::string value(Trim(std::string_view(*line).substr(colon + 1)));
    if (name == "content-length") {
      auto n = ParseInt64(value);
      if (n.ok() && *n >= 0) {
        have_length = true;
        length = static_cast<size_t>(*n);
      }
    }
    resp.headers[name] = std::move(value);
  }

  if (have_length) {
    SCUBE_RETURN_IF_ERROR(reader->ReadExact(length, &resp.body));
  } else {
    // Read to EOF (Connection: close responses).
    std::string chunk;
    while (!reader->AtEof()) {
      auto line = reader->ReadLine();
      if (!line.ok()) break;
      resp.body += *line;
      resp.body += '\n';
    }
  }
  return resp;
}

Result<HttpClientResponse> RoundTrip(Socket* socket, BufferedReader* reader,
                                     const std::string& method,
                                     const std::string& target,
                                     const std::string& body,
                                     const std::string& content_type) {
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: localhost\r\n";
  request += "Content-Type: " + content_type + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: keep-alive\r\n\r\n";
  request += body;
  SCUBE_RETURN_IF_ERROR(socket->WriteAll(request));
  return ReadHttpResponse(reader);
}

}  // namespace net
}  // namespace scube
