#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <ctime>

#include "common/string_util.h"

namespace scube {
namespace net {

namespace {

constexpr size_t kReadChunk = 16 * 1024;
constexpr size_t kMaxHeaderLines = 128;

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
          c == '_')) {
      return false;
    }
  }
  return true;
}

}  // namespace

Status BufferedReader::Fill() {
  if (eof_) return Status::OK();
  // The total-time cap, checked before every receive: a peer trickling
  // one byte per receive-timeout window keeps each recv "successful" but
  // cannot push the wall clock back.
  if (deadline_ && std::chrono::steady_clock::now() >= *deadline_) {
    return Status::DeadlineExceeded("request read deadline exceeded");
  }
  // Compact the consumed prefix before growing the buffer.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  size_t old = buf_.size();
  buf_.resize(old + kReadChunk);
  auto got = socket_->Read(buf_.data() + old, kReadChunk);
  if (!got.ok()) {
    buf_.resize(old);
    return got.status();
  }
  buf_.resize(old + *got);
  if (*got == 0) eof_ = true;
  return Status::OK();
}

Result<std::string> BufferedReader::ReadLine(size_t max_len) {
  while (true) {
    size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      std::string line = buf_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buf_.size() - pos_ > max_len) {
      return Status::IoError("line exceeds " + std::to_string(max_len) +
                             " bytes");
    }
    if (eof_) {
      if (pos_ < buf_.size()) {
        // Final unterminated line.
        std::string line = buf_.substr(pos_);
        pos_ = buf_.size();
        return line;
      }
      return Status::IoError("connection closed");
    }
    SCUBE_RETURN_IF_ERROR(Fill());
  }
}

Status BufferedReader::ReadExact(size_t n, std::string* out) {
  out->clear();
  return ReadExactAppend(n, out);
}

Status BufferedReader::ReadExactAppend(size_t n, std::string* out) {
  while (buf_.size() - pos_ < n) {
    if (eof_) {
      return Status::IoError("connection closed mid-body (" +
                             std::to_string(buf_.size() - pos_) + " of " +
                             std::to_string(n) + " bytes)");
    }
    SCUBE_RETURN_IF_ERROR(Fill());
  }
  out->append(buf_, pos_, n);
  pos_ += n;
  return Status::OK();
}

bool BufferedReader::AtEof() {
  while (pos_ >= buf_.size() && !eof_) {
    if (!Fill().ok()) return true;
  }
  return pos_ >= buf_.size() && eof_;
}

Result<std::string_view> BufferedReader::PeekSome() {
  while (pos_ >= buf_.size()) {
    if (eof_) return std::string_view();
    SCUBE_RETURN_IF_ERROR(Fill());
  }
  return std::string_view(buf_).substr(pos_);
}

void BufferedReader::Advance(size_t n) {
  pos_ += std::min(n, buf_.size() - pos_);
}

const std::string& HttpRequest::Header(const std::string& lower_name) const {
  static const std::string kEmpty;
  auto it = headers.find(lower_name);
  return it == headers.end() ? kEmpty : it->second;
}

std::string HttpRequest::Param(const std::string& name,
                               const std::string& fallback) const {
  auto it = params.find(name);
  return it == params.end() ? fallback : it->second;
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

bool SniffsAsHttp(std::string_view first_line) {
  // METHOD SP target SP HTTP/1.x — enough to separate curl from a client
  // typing SCubeQL directly.
  size_t sp1 = first_line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  size_t sp2 = first_line.rfind(' ');
  if (sp2 == sp1) return false;
  return IsToken(first_line.substr(0, sp1)) &&
         first_line.substr(sp2 + 1).rfind("HTTP/1.", 0) == 0;
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < s.size() &&
               std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        return (std::tolower(static_cast<unsigned char>(h)) - 'a') + 10;
      };
      out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

void ParseTarget(std::string_view target, std::string* path,
                 std::map<std::string, std::string>* params) {
  size_t q = target.find('?');
  *path = UrlDecode(target.substr(0, q));
  params->clear();
  if (q == std::string_view::npos) return;
  std::string_view rest = target.substr(q + 1);
  while (!rest.empty()) {
    size_t amp = rest.find('&');
    std::string_view pair = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      (*params)[UrlDecode(pair)] = "";
    } else {
      (*params)[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
  }
}

// --- HttpRequestParser ------------------------------------------------------

namespace {

/// The ReadLine bound, mirrored so the incremental parser rejects an
/// endless header line exactly where the blocking reader would.
constexpr size_t kMaxLineBytes = 64 * 1024;

}  // namespace

HttpRequestParser::HttpRequestParser(size_t max_body) : max_body_(max_body) {}

void HttpRequestParser::Reset() {
  state_ = State::kRequestLine;
  status_ = Status::OK();
  request_ = HttpRequest{};
  line_.clear();
  header_count_ = 0;
  body_expected_ = 0;
}

void HttpRequestParser::Fail(Status status) {
  state_ = State::kError;
  status_ = std::move(status);
}

size_t HttpRequestParser::Feed(std::string_view data) {
  size_t used = 0;
  while (used < data.size() && state_ != State::kDone &&
         state_ != State::kError) {
    if (state_ == State::kBody) {
      size_t want = body_expected_ - request_.body.size();
      size_t take = std::min(want, data.size() - used);
      request_.body.append(data.substr(used, take));
      used += take;
      if (request_.body.size() == body_expected_) state_ = State::kDone;
      continue;
    }
    size_t nl = data.find('\n', used);
    if (nl == std::string_view::npos) {
      size_t take = data.size() - used;
      if (line_.size() + take > kMaxLineBytes) {
        Fail(Status::IoError("line exceeds " +
                             std::to_string(kMaxLineBytes) + " bytes"));
        return data.size();
      }
      line_.append(data.substr(used));
      return data.size();
    }
    line_.append(data.substr(used, nl - used));
    used = nl + 1;
    if (line_.size() > kMaxLineBytes) {
      Fail(Status::IoError("line exceeds " + std::to_string(kMaxLineBytes) +
                           " bytes"));
      return used;
    }
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    std::string line = std::move(line_);
    line_.clear();
    ConsumeLine(line);
  }
  return used;
}

void HttpRequestParser::ConsumeLine(const std::string& line) {
  if (state_ == State::kRequestLine) {
    size_t sp1 = line.find(' ');
    size_t sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1) {
      Fail(Status::ParseError("malformed request line: " + line));
      return;
    }
    request_.method = line.substr(0, sp1);
    std::transform(request_.method.begin(), request_.method.end(),
                   request_.method.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string version = line.substr(sp2 + 1);
    if (version.rfind("HTTP/1.", 0) != 0) {
      Fail(Status::ParseError("unsupported protocol: " + version));
      return;
    }
    // HTTP/1.0 defaults to close, 1.1 to keep-alive.
    request_.keep_alive = version != "HTTP/1.0";
    ParseTarget(request_.target, &request_.path, &request_.params);
    state_ = State::kHeaders;
    return;
  }

  // State::kHeaders.
  if (line.empty()) {
    FinishHeaders();
    return;
  }
  if (header_count_ >= kMaxHeaderLines) {
    // Failing (rather than silently truncating) keeps the connection from
    // desyncing: leftover header bytes would otherwise be read as body.
    Fail(Status::ParseError("more than " + std::to_string(kMaxHeaderLines) +
                            " headers"));
    return;
  }
  size_t colon = line.find(':');
  if (colon == std::string::npos) {
    Fail(Status::ParseError("malformed header: " + line));
    return;
  }
  std::string name = ToLower(Trim(std::string_view(line).substr(0, colon)));
  std::string value(Trim(std::string_view(line).substr(colon + 1)));
  request_.headers[name] = std::move(value);
  ++header_count_;
}

void HttpRequestParser::FinishHeaders() {
  const std::string& connection = request_.Header("connection");
  if (!connection.empty()) {
    std::string lower = ToLower(connection);
    if (lower.find("close") != std::string::npos) {
      request_.keep_alive = false;
    }
    if (lower.find("keep-alive") != std::string::npos) {
      request_.keep_alive = true;
    }
  }

  const std::string& length = request_.Header("content-length");
  if (!length.empty()) {
    auto n = ParseInt64(length);
    if (!n.ok() || *n < 0) {
      Fail(Status::ParseError("bad Content-Length: " + length));
      return;
    }
    if (static_cast<size_t>(*n) > max_body_) {
      Fail(Status::InvalidArgument("request body of " + length +
                                   " bytes exceeds the limit of " +
                                   std::to_string(max_body_)));
      return;
    }
    body_expected_ = static_cast<size_t>(*n);
    request_.body.reserve(body_expected_);
    state_ = body_expected_ == 0 ? State::kDone : State::kBody;
    return;
  }
  if (!request_.Header("transfer-encoding").empty()) {
    Fail(Status::Unimplemented("chunked transfer encoding not supported"));
    return;
  }
  state_ = State::kDone;
}

Result<HttpRequest> ReadHttpRequest(BufferedReader* reader,
                                    const std::string& request_line,
                                    size_t max_body) {
  HttpRequestParser parser(max_body);
  // The request line arrived pre-stripped (the dialect sniff consumed it);
  // hand it to the parser with its terminator restored.
  parser.Feed(request_line);
  parser.Feed("\n");
  while (!parser.done() && !parser.failed()) {
    auto chunk = reader->PeekSome();
    if (!chunk.ok()) return chunk.status();
    if (chunk->empty()) {
      if (parser.in_body()) {
        return Status::IoError(
            "connection closed mid-body (" +
            std::to_string(parser.body_received()) + " of " +
            std::to_string(parser.body_expected()) + " bytes)");
      }
      return Status::IoError("connection closed");
    }
    reader->Advance(parser.Feed(*chunk));
  }
  if (parser.failed()) return parser.status();
  return std::move(parser.request());
}

std::string SerializeResponseHead(const HttpResponse& response,
                                  bool keep_alive, bool chunked) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  if (chunked) {
    // Never alongside Content-Length: a streamed response's size is
    // unknown when the head leaves, and emitting both desyncs keep-alive.
    out += "Transfer-Encoding: chunked\r\n";
  } else {
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out =
      SerializeResponseHead(response, keep_alive, /*chunked=*/false);
  out += response.body;
  return out;
}

// --- ChunkedWriter ----------------------------------------------------------

ChunkedWriter::ChunkedWriter(WriteFn write, size_t flush_bytes)
    : write_(std::move(write)),
      flush_bytes_(flush_bytes == 0 ? kDefaultFlushBytes : flush_bytes) {
  buffer_.reserve(flush_bytes_);
}

Status ChunkedWriter::Emit(std::string_view raw) {
  if (!status_.ok()) return status_;
  status_ = write_(raw);
  if (status_.ok()) bytes_written_ += raw.size();
  return status_;
}

Status ChunkedWriter::WriteHead(const HttpResponse& head, bool keep_alive) {
  if (head_written_) return Status::FailedPrecondition("head already written");
  head_written_ = true;
  trace::Span span(trace_, "wire.head");
  return Emit(SerializeResponseHead(head, keep_alive, /*chunked=*/true));
}

Status ChunkedWriter::Write(std::string_view data) {
  if (!status_.ok()) return status_;
  if (finished_) return Status::FailedPrecondition("stream finished");
  buffer_.append(data);
  peak_buffer_ = std::max(peak_buffer_, buffer_.size());
  if (buffer_.size() >= flush_bytes_) return Flush();
  return status_;
}

Status ChunkedWriter::Flush() {
  if (!status_.ok()) return status_;
  if (buffer_.empty()) return status_;
  trace::Span span(trace_, "wire.flush");
  char size_line[32];
  int n = std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                        buffer_.size());
  std::string frame;
  frame.reserve(static_cast<size_t>(n) + buffer_.size() + 2);
  frame.append(size_line, static_cast<size_t>(n));
  frame.append(buffer_);
  frame.append("\r\n");
  buffer_.clear();
  return Emit(frame);
}

Status ChunkedWriter::Finish() {
  if (finished_) return status_;
  if (!head_written_) {
    return Status::FailedPrecondition("Finish before WriteHead");
  }
  SCUBE_RETURN_IF_ERROR(Flush());
  finished_ = true;
  return Emit("0\r\n\r\n");
}

namespace {

/// Chunks beyond this are rejected rather than allocated: no peer of ours
/// sends chunks anywhere near it (the server flushes at ~16 KiB), and it
/// keeps a hostile size line from driving a huge allocation.
constexpr size_t kMaxChunkBytes = 256 * 1024 * 1024;

/// Total decoded-body bound: an endless stream of small chunks must not
/// grow the client's memory without limit either.
constexpr size_t kMaxChunkedBodyBytes = 1024 * 1024 * 1024;

/// Decodes a chunked body by looping the incremental reader: size-line /
/// payload pairs until the 0 chunk, then trailer headers (folded into
/// `headers`) up to the blank line.
Status ReadChunkedBody(BufferedReader* reader, std::string* body,
                       std::map<std::string, std::string>* headers) {
  ChunkedBodyReader chunks(reader);
  while (true) {
    auto more = chunks.ReadSome(body);
    if (!more.ok()) return more.status();
    if (body->size() > kMaxChunkedBodyBytes) {
      return Status::ParseError("chunked body exceeds " +
                                std::to_string(kMaxChunkedBodyBytes) +
                                " bytes");
    }
    if (!*more) break;
  }
  // Trailers never overwrite headers already parsed from the header
  // section (RFC 7230 §4.1.2 forbids framing/control fields there — a
  // trailer saying "Content-Length: 0" must not clobber the real framing).
  for (const auto& [name, value] : chunks.trailers()) {
    headers->emplace(name, value);
  }
  return Status::OK();
}

}  // namespace

Result<bool> ChunkedBodyReader::ReadSome(std::string* out) {
  if (done_) return Result<bool>(false);
  auto size_line = reader_->ReadLine();
  if (!size_line.ok()) return size_line.status();
  // Chunk extensions ("1a;name=value") are tolerated and ignored.
  std::string_view digits(*size_line);
  size_t semi = digits.find(';');
  if (semi != std::string_view::npos) digits = digits.substr(0, semi);
  digits = Trim(digits);
  if (digits.empty()) {
    return Status::ParseError("empty chunk size line");
  }
  auto parsed = ParseHexU64(digits);
  if (!parsed.ok()) {
    // A value overflowing uint64 must not wrap (wrapping to 0 would read
    // as the terminal chunk and misframe the rest of the stream).
    return digits.size() > 16
               ? Status::ParseError("chunk size too large: " + *size_line)
               : Status::ParseError("bad chunk size: " + *size_line);
  }
  if (*parsed > kMaxChunkBytes) {
    return Status::ParseError("chunk size too large: " + *size_line);
  }
  size_t size = static_cast<size_t>(*parsed);
  if (size == 0) {
    // Trailer section: header lines until the blank line.
    for (size_t i = 0; i < kMaxHeaderLines; ++i) {
      auto line = reader_->ReadLine();
      if (!line.ok()) return line.status();
      if (line->empty()) {
        done_ = true;
        return Result<bool>(false);
      }
      size_t colon = line->find(':');
      if (colon == std::string::npos) continue;
      std::string name =
          ToLower(Trim(std::string_view(*line).substr(0, colon)));
      trailers_.emplace(
          name, std::string(Trim(std::string_view(*line).substr(colon + 1))));
    }
    return Status::ParseError("more than " + std::to_string(kMaxHeaderLines) +
                              " trailer lines");
  }
  SCUBE_RETURN_IF_ERROR(reader_->ReadExactAppend(size, out));
  // The CRLF that terminates the chunk payload.
  auto crlf = reader_->ReadLine();
  if (!crlf.ok()) return crlf.status();
  if (!crlf->empty()) {
    return Status::ParseError("chunk payload not followed by CRLF");
  }
  return Result<bool>(true);
}

namespace {

/// Parses the status line + header section into a response head; the
/// reader ends up positioned at the first body byte.
Status ParseResponseHead(BufferedReader* reader,
                         const std::string& status_line,
                         HttpResponseHead* head) {
  // "HTTP/1.1 200 OK"
  size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos || status_line.rfind("HTTP/", 0) != 0) {
    return Status::ParseError("malformed status line: " + status_line);
  }
  auto code = ParseInt64(std::string_view(status_line).substr(sp1 + 1, 3));
  if (!code.ok()) {
    return Status::ParseError("malformed status line: " + status_line);
  }
  head->status = static_cast<int>(*code);

  for (size_t i = 0; i < kMaxHeaderLines; ++i) {
    auto line = reader->ReadLine();
    if (!line.ok()) return line.status();
    if (line->empty()) break;
    size_t colon = line->find(':');
    if (colon == std::string::npos) continue;
    std::string name = ToLower(Trim(std::string_view(*line).substr(0, colon)));
    std::string value(Trim(std::string_view(*line).substr(colon + 1)));
    if (name == "content-length") {
      auto n = ParseInt64(value);
      if (n.ok() && *n >= 0) {
        head->have_length = true;
        head->length = static_cast<size_t>(*n);
      }
    } else if (name == "transfer-encoding" &&
               ToLower(value).find("chunked") != std::string::npos) {
      head->chunked = true;
    }
    head->headers[name] = std::move(value);
  }
  return Status::OK();
}

}  // namespace

Result<HttpResponseHead> ReadHttpResponseHead(BufferedReader* reader) {
  auto status_line = reader->ReadLine();
  if (!status_line.ok()) return status_line.status();
  HttpResponseHead head;
  SCUBE_RETURN_IF_ERROR(ParseResponseHead(reader, *status_line, &head));
  return head;
}

Result<HttpClientResponse> ReadHttpResponseAfterStatusLine(
    BufferedReader* reader, const std::string& status_line) {
  HttpResponseHead head;
  SCUBE_RETURN_IF_ERROR(ParseResponseHead(reader, status_line, &head));
  HttpClientResponse resp;
  resp.status = head.status;
  resp.headers = std::move(head.headers);

  if (head.chunked) {
    SCUBE_RETURN_IF_ERROR(
        ReadChunkedBody(reader, &resp.body, &resp.headers));
  } else if (head.have_length) {
    SCUBE_RETURN_IF_ERROR(reader->ReadExact(head.length, &resp.body));
  } else {
    // Read to EOF (Connection: close responses).
    while (!reader->AtEof()) {
      auto line = reader->ReadLine();
      if (!line.ok()) break;
      resp.body += *line;
      resp.body += '\n';
    }
  }
  return resp;
}

Result<HttpClientResponse> ReadHttpResponse(BufferedReader* reader) {
  auto status_line = reader->ReadLine();
  if (!status_line.ok()) return status_line.status();
  return ReadHttpResponseAfterStatusLine(reader, *status_line);
}

Result<HttpClientResponse> RoundTrip(Socket* socket, BufferedReader* reader,
                                     const std::string& method,
                                     const std::string& target,
                                     const std::string& body,
                                     const std::string& content_type) {
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: localhost\r\n";
  request += "Content-Type: " + content_type + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: keep-alive\r\n\r\n";
  request += body;
  SCUBE_RETURN_IF_ERROR(socket->WriteAll(request));
  return ReadHttpResponse(reader);
}

namespace {

void SleepMillis(int ms) {
  struct timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

}  // namespace

Status OpenClientConnection(const std::string& host, uint16_t port,
                            const ClientOptions& options,
                            ClientConnection* conn) {
  conn->Reset();
  auto socket = ConnectWithTimeout(host, port, options.connect_timeout_s);
  if (!socket.ok()) return socket.status();
  conn->socket = std::move(socket).value();
  if (options.read_timeout_s > 0) {
    SCUBE_RETURN_IF_ERROR(conn->socket.SetRecvTimeout(options.read_timeout_s));
  }
  (void)conn->socket.SetNoDelay();  // best effort: latency, not correctness
  conn->reader = std::make_unique<BufferedReader>(&conn->socket);
  return Status::OK();
}

Result<HttpClientResponse> RoundTripWithRetry(
    ClientConnection* conn, const std::string& host, uint16_t port,
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& content_type,
    const ClientOptions& options) {
  const int attempts = std::max(1, options.max_attempts);
  int backoff_ms = std::max(1, options.backoff_initial_ms);
  Status last = Status::IoError("no attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      SleepMillis(backoff_ms);
      backoff_ms = std::min(backoff_ms * 2, std::max(1, options.backoff_max_ms));
    }
    const bool reused = conn->valid();
    if (!reused) {
      Status opened = OpenClientConnection(host, port, options, conn);
      if (!opened.ok()) {
        last = std::move(opened);
        continue;
      }
    }
    auto resp = RoundTrip(&conn->socket, conn->reader.get(), method, target,
                          body, content_type);
    if (resp.ok()) return resp;
    last = resp.status();
    conn->Reset();
    if (reused) {
      // A keep-alive connection the peer closed between requests fails on
      // the first read — that is staleness, not backend trouble, so
      // reconnect and resend immediately without consuming an attempt.
      Status opened = OpenClientConnection(host, port, options, conn);
      if (!opened.ok()) {
        last = std::move(opened);
        continue;
      }
      auto retry = RoundTrip(&conn->socket, conn->reader.get(), method,
                             target, body, content_type);
      if (retry.ok()) return retry;
      last = retry.status();
      conn->Reset();
    }
  }
  return last;
}

}  // namespace net
}  // namespace scube
