// Connected components via BFS — the first GraphClustering method of the
// paper ("extraction of connected components (Breadth-First Search)").

#ifndef SCUBE_GRAPH_CONNECTED_COMPONENTS_H_
#define SCUBE_GRAPH_CONNECTED_COMPONENTS_H_

#include "graph/clustering.h"
#include "graph/graph.h"

namespace scube {
namespace graph {

/// Partitions the graph into its connected components. Isolated nodes each
/// form a singleton component. Component ids are assigned in order of the
/// smallest contained node.
Clustering ConnectedComponents(const Graph& graph);

}  // namespace graph
}  // namespace scube

#endif  // SCUBE_GRAPH_CONNECTED_COMPONENTS_H_
