// BipartiteGraph: individuals x groups membership with validity intervals.
//
// Matches the paper's `membership` input: pairs (individualID, groupID),
// optionally labelled with a time interval of validity (the Estonian
// dataset), enabling temporal snapshots.

#ifndef SCUBE_GRAPH_BIPARTITE_H_
#define SCUBE_GRAPH_BIPARTITE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace scube {
namespace graph {

/// Days since epoch (any consistent integer calendar works).
using Date = int64_t;

inline constexpr Date kDateMin = std::numeric_limits<Date>::min();
inline constexpr Date kDateMax = std::numeric_limits<Date>::max();

/// \brief One membership edge with right-open validity [from, to).
struct Membership {
  NodeId individual = 0;
  NodeId group = 0;
  Date valid_from = kDateMin;
  Date valid_to = kDateMax;

  bool ActiveAt(Date date) const {
    return valid_from <= date && date < valid_to;
  }
};

/// \brief Append-only bipartite membership graph.
class BipartiteGraph {
 public:
  BipartiteGraph(uint32_t num_individuals, uint32_t num_groups)
      : num_individuals_(num_individuals), num_groups_(num_groups) {}

  uint32_t NumIndividuals() const { return num_individuals_; }
  uint32_t NumGroups() const { return num_groups_; }
  size_t NumMemberships() const { return memberships_.size(); }

  /// Adds a membership valid forever.
  Status AddMembership(NodeId individual, NodeId group);

  /// Adds a membership valid in [from, to).
  Status AddMembership(NodeId individual, NodeId group, Date from, Date to);

  const std::vector<Membership>& memberships() const { return memberships_; }

  /// Per-individual group lists active at `date` (index = individual).
  std::vector<std::vector<NodeId>> GroupsByIndividual(Date date) const;

  /// Per-group individual lists active at `date` (index = group).
  std::vector<std::vector<NodeId>> IndividualsByGroup(Date date) const;

 private:
  uint32_t num_individuals_;
  uint32_t num_groups_;
  std::vector<Membership> memberships_;
};

}  // namespace graph
}  // namespace scube

#endif  // SCUBE_GRAPH_BIPARTITE_H_
