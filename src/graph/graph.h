// Graph: compact CSR storage for weighted undirected graphs.
//
// From-scratch replacement for the FastUtil-based graph storage of the Java
// original. Node ids are dense uint32; edges carry double weights (the
// projection weights edges by the number of shared directors).

#ifndef SCUBE_GRAPH_GRAPH_H_
#define SCUBE_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"

namespace scube {
namespace graph {

/// Dense node identifier.
using NodeId = uint32_t;

/// \brief An undirected weighted edge (u != v).
struct WeightedEdge {
  NodeId u = 0;
  NodeId v = 0;
  double weight = 1.0;

  bool operator==(const WeightedEdge& other) const {
    return u == other.u && v == other.v && weight == other.weight;
  }
};

/// \brief Immutable undirected weighted graph in CSR form.
class Graph {
 public:
  /// \brief One adjacency entry.
  struct Neighbor {
    NodeId node;
    double weight;
  };

  Graph() = default;

  /// Builds from an edge list. Self-loops are rejected; parallel edges are
  /// merged by summing weights. Node ids must be < num_nodes.
  static Result<Graph> FromEdges(uint32_t num_nodes,
                                 const std::vector<WeightedEdge>& edges);

  uint32_t NumNodes() const { return num_nodes_; }

  /// Number of distinct undirected edges.
  uint64_t NumEdges() const { return adjacency_.size() / 2; }

  /// Sorted-by-node adjacency of `u`.
  std::span<const Neighbor> Neighbors(NodeId u) const {
    return std::span<const Neighbor>(adjacency_.data() + offsets_[u],
                                     offsets_[u + 1] - offsets_[u]);
  }

  uint32_t Degree(NodeId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Sum of incident edge weights.
  double WeightedDegree(NodeId u) const;

  /// Sum of all edge weights (each undirected edge counted once).
  double TotalWeight() const { return total_weight_; }

  /// Weight of edge (u,v), or 0 when absent. O(log degree).
  double EdgeWeight(NodeId u, NodeId v) const;

  /// True iff (u,v) is an edge.
  bool HasEdge(NodeId u, NodeId v) const { return EdgeWeight(u, v) > 0.0; }

  /// Copy with all edges of weight < min_weight removed.
  Graph FilterEdges(double min_weight) const;

  /// All edges, each reported once with u < v, sorted.
  std::vector<WeightedEdge> Edges() const;

 private:
  uint32_t num_nodes_ = 0;
  std::vector<uint64_t> offsets_{0};
  std::vector<Neighbor> adjacency_;
  double total_weight_ = 0.0;
};

/// \brief Per-node categorical attribute tokens for attributed clustering.
///
/// Each node carries a sorted set of opaque tokens (encode attribute=value
/// pairs); similarity between nodes is Jaccard over the token sets.
class NodeAttributes {
 public:
  NodeAttributes() = default;
  explicit NodeAttributes(uint32_t num_nodes) : tokens_(num_nodes) {}

  uint32_t NumNodes() const { return static_cast<uint32_t>(tokens_.size()); }

  /// Replaces the token set of `node` (sorted/deduplicated internally).
  void SetTokens(NodeId node, std::vector<uint32_t> tokens);

  const std::vector<uint32_t>& Tokens(NodeId node) const {
    return tokens_[node];
  }

  /// Jaccard similarity of the two token sets; 1.0 when both are empty.
  double Jaccard(NodeId a, NodeId b) const;

 private:
  std::vector<std::vector<uint32_t>> tokens_;
};

}  // namespace graph
}  // namespace scube

#endif  // SCUBE_GRAPH_GRAPH_H_
