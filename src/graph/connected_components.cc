#include "graph/connected_components.h"

#include <queue>

namespace scube {
namespace graph {

Clustering ConnectedComponents(const Graph& graph) {
  constexpr uint32_t kUnvisited = 0xFFFFFFFFu;
  Clustering out;
  out.labels.assign(graph.NumNodes(), kUnvisited);
  uint32_t next = 0;
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < graph.NumNodes(); ++start) {
    if (out.labels[start] != kUnvisited) continue;
    out.labels[start] = next;
    frontier.push(start);
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop();
      for (const Graph::Neighbor& n : graph.Neighbors(u)) {
        if (out.labels[n.node] == kUnvisited) {
          out.labels[n.node] = next;
          frontier.push(n.node);
        }
      }
    }
    ++next;
  }
  out.num_clusters = next;
  return out;
}

}  // namespace graph
}  // namespace scube
