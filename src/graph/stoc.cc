#include "graph/stoc.h"

#include <algorithm>
#include <numeric>
#include <queue>

namespace scube {
namespace graph {

namespace {

// Jaccard similarity of closed neighbourhoods N[u], N[v]. Self-loops are
// rejected by Graph, so inserting the node itself never duplicates.
double TopologicalJaccard(const Graph& graph, NodeId u, NodeId v) {
  thread_local std::vector<NodeId> cu, cv;
  cu.clear();
  cv.clear();
  for (const Graph::Neighbor& n : graph.Neighbors(u)) cu.push_back(n.node);
  cu.insert(std::lower_bound(cu.begin(), cu.end(), u), u);
  for (const Graph::Neighbor& n : graph.Neighbors(v)) cv.push_back(n.node);
  cv.insert(std::lower_bound(cv.begin(), cv.end(), v), v);

  size_t i = 0, j = 0, inter = 0;
  while (i < cu.size() && j < cv.size()) {
    if (cu[i] == cv[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (cu[i] < cv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = cu.size() + cv.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

double StocSimilarity(const Graph& graph, const NodeAttributes& attributes,
                      NodeId u, NodeId v, double alpha) {
  double topo = TopologicalJaccard(graph, u, v);
  double attr = attributes.Jaccard(u, v);
  return alpha * topo + (1.0 - alpha) * attr;
}

Result<Clustering> StocClustering(const Graph& graph,
                                  const NodeAttributes& attributes,
                                  const StocOptions& options) {
  if (options.tau < 0.0 || options.tau > 1.0) {
    return Status::InvalidArgument("tau must be in [0,1]");
  }
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0,1]");
  }
  if (attributes.NumNodes() < graph.NumNodes()) {
    return Status::InvalidArgument(
        "attributes cover " + std::to_string(attributes.NumNodes()) +
        " nodes, graph has " + std::to_string(graph.NumNodes()));
  }

  constexpr uint32_t kUnassigned = 0xFFFFFFFFu;
  std::vector<uint32_t> labels(graph.NumNodes(), kUnassigned);
  std::vector<uint32_t> depth(graph.NumNodes(), 0);

  // Random seed order (deterministic given rng_seed).
  std::vector<NodeId> order(graph.NumNodes());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options.rng_seed);
  rng.Shuffle(&order);

  uint32_t next_label = 0;
  std::queue<NodeId> frontier;
  for (NodeId seed : order) {
    if (labels[seed] != kUnassigned) continue;
    labels[seed] = next_label;
    depth[seed] = 0;
    frontier.push(seed);
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop();
      if (depth[u] >= options.max_radius) continue;
      for (const Graph::Neighbor& n : graph.Neighbors(u)) {
        if (labels[n.node] != kUnassigned) continue;
        double sim =
            StocSimilarity(graph, attributes, seed, n.node, options.alpha);
        if (sim >= options.tau) {
          labels[n.node] = next_label;
          depth[n.node] = depth[u] + 1;
          frontier.push(n.node);
        }
      }
    }
    ++next_label;
  }

  Clustering out;
  out.labels = std::move(labels);
  out.num_clusters = next_label;
  return out;
}

}  // namespace graph
}  // namespace scube
