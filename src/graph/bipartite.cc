#include "graph/bipartite.h"

#include <algorithm>

namespace scube {
namespace graph {

Status BipartiteGraph::AddMembership(NodeId individual, NodeId group) {
  return AddMembership(individual, group, kDateMin, kDateMax);
}

Status BipartiteGraph::AddMembership(NodeId individual, NodeId group,
                                     Date from, Date to) {
  if (individual >= num_individuals_) {
    return Status::OutOfRange("individual id " + std::to_string(individual) +
                              " out of range");
  }
  if (group >= num_groups_) {
    return Status::OutOfRange("group id " + std::to_string(group) +
                              " out of range");
  }
  if (from >= to) {
    return Status::InvalidArgument("empty validity interval");
  }
  memberships_.push_back(Membership{individual, group, from, to});
  return Status::OK();
}

std::vector<std::vector<NodeId>> BipartiteGraph::GroupsByIndividual(
    Date date) const {
  std::vector<std::vector<NodeId>> out(num_individuals_);
  for (const Membership& m : memberships_) {
    if (m.ActiveAt(date)) out[m.individual].push_back(m.group);
  }
  for (auto& groups : out) {
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  }
  return out;
}

std::vector<std::vector<NodeId>> BipartiteGraph::IndividualsByGroup(
    Date date) const {
  std::vector<std::vector<NodeId>> out(num_groups_);
  for (const Membership& m : memberships_) {
    if (m.ActiveAt(date)) out[m.group].push_back(m.individual);
  }
  for (auto& members : out) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
  }
  return out;
}

}  // namespace graph
}  // namespace scube
