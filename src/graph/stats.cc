#include "graph/stats.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace scube {
namespace graph {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.NumNodes();
  stats.num_edges = graph.NumEdges();
  uint64_t degree_sum = 0;
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    uint32_t d = graph.Degree(u);
    if (d == 0) ++stats.num_isolated;
    degree_sum += d;
    stats.max_degree = std::max(stats.max_degree, d);
    for (const Graph::Neighbor& n : graph.Neighbors(u)) {
      if (u < n.node) {
        stats.max_edge_weight = std::max(stats.max_edge_weight, n.weight);
      }
    }
  }
  if (graph.NumNodes() > 0) {
    stats.mean_degree =
        static_cast<double>(degree_sum) / static_cast<double>(graph.NumNodes());
  }
  if (graph.NumEdges() > 0) {
    stats.mean_edge_weight =
        graph.TotalWeight() / static_cast<double>(graph.NumEdges());
  }
  return stats;
}

std::vector<uint64_t> DegreeHistogram(const Graph& graph,
                                      uint32_t max_degree) {
  std::vector<uint64_t> counts(max_degree + 1, 0);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    ++counts[std::min(graph.Degree(u), max_degree)];
  }
  return counts;
}

double LocalClusteringCoefficient(const Graph& graph, NodeId u) {
  uint32_t degree = graph.Degree(u);
  if (degree < 2) return 0.0;
  auto neighbors = graph.Neighbors(u);
  uint64_t triangles = 0;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    for (size_t j = i + 1; j < neighbors.size(); ++j) {
      if (graph.HasEdge(neighbors[i].node, neighbors[j].node)) ++triangles;
    }
  }
  double wedges = 0.5 * degree * (degree - 1);
  return static_cast<double>(triangles) / wedges;
}

double MeanClusteringCoefficient(const Graph& graph, Rng* rng,
                                 uint32_t samples) {
  if (graph.NumNodes() == 0 || samples == 0) return 0.0;
  double sum = 0.0;
  for (uint32_t s = 0; s < samples; ++s) {
    NodeId u = static_cast<NodeId>(rng->NextBounded(graph.NumNodes()));
    sum += LocalClusteringCoefficient(graph, u);
  }
  return sum / samples;
}

double AdjustedRandIndex(const Clustering& a, const Clustering& b) {
  SCUBE_CHECK(a.NumNodes() == b.NumNodes());
  const size_t n = a.NumNodes();
  if (n < 2) return 1.0;

  // Contingency counts n_ij, row sums a_i, column sums b_j.
  std::unordered_map<uint64_t, uint64_t> joint;
  std::vector<uint64_t> row(a.num_clusters, 0), col(b.num_clusters, 0);
  for (size_t i = 0; i < n; ++i) {
    uint64_t key = (static_cast<uint64_t>(a.labels[i]) << 32) | b.labels[i];
    ++joint[key];
    ++row[a.labels[i]];
    ++col[b.labels[i]];
  }
  auto choose2 = [](uint64_t x) {
    return static_cast<double>(x) * static_cast<double>(x - 1) / 2.0;
  };
  double sum_joint = 0.0, sum_row = 0.0, sum_col = 0.0;
  for (const auto& [key, count] : joint) sum_joint += choose2(count);
  for (uint64_t r : row) sum_row += choose2(r);
  for (uint64_t c : col) sum_col += choose2(c);
  double total_pairs = choose2(n);
  double expected = sum_row * sum_col / total_pairs;
  double max_index = 0.5 * (sum_row + sum_col);
  if (max_index == expected) return 1.0;  // both trivial partitions
  return (sum_joint - expected) / (max_index - expected);
}

}  // namespace graph
}  // namespace scube
