// Graph and clustering statistics: degree/weight distributions, clustering
// coefficient, and Adjusted Rand Index for comparing a clustering against
// planted ground truth (used to evaluate the GraphClustering methods).

#ifndef SCUBE_GRAPH_STATS_H_
#define SCUBE_GRAPH_STATS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/random.h"
#include "graph/clustering.h"
#include "graph/graph.h"

namespace scube {
namespace graph {

/// \brief Summary statistics of a graph.
struct GraphStats {
  uint32_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint32_t num_isolated = 0;
  double mean_degree = 0.0;
  uint32_t max_degree = 0;
  double mean_edge_weight = 0.0;
  double max_edge_weight = 0.0;
};

/// Computes basic statistics in one pass.
GraphStats ComputeGraphStats(const Graph& graph);

/// Degree histogram: counts[d] = number of nodes of degree d (capped at
/// `max_degree`; larger degrees land in the last bucket).
std::vector<uint64_t> DegreeHistogram(const Graph& graph,
                                      uint32_t max_degree = 32);

/// Local clustering coefficient of node `u` (triangles / wedges); 0 for
/// degree < 2.
double LocalClusteringCoefficient(const Graph& graph, NodeId u);

/// Mean local clustering coefficient over `samples` random nodes
/// (deterministic given rng).
double MeanClusteringCoefficient(const Graph& graph, Rng* rng,
                                 uint32_t samples = 1000);

/// Adjusted Rand Index between two partitions of the same node set:
/// 1 = identical, ~0 = random agreement, can be negative. Both clusterings
/// must cover the same number of nodes.
double AdjustedRandIndex(const Clustering& a, const Clustering& b);

}  // namespace graph
}  // namespace scube

#endif  // SCUBE_GRAPH_STATS_H_
