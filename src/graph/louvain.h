// Louvain modularity clustering (Blondel et al. 2008) — an extension beyond
// the paper's three methods, used as a quality baseline in the clustering
// benchmark.

#ifndef SCUBE_GRAPH_LOUVAIN_H_
#define SCUBE_GRAPH_LOUVAIN_H_

#include "common/result.h"
#include "graph/clustering.h"
#include "graph/graph.h"

namespace scube {
namespace graph {

/// \brief Louvain parameters.
struct LouvainOptions {
  /// Maximum number of aggregation levels.
  uint32_t max_levels = 10;

  /// Maximum local-move sweeps per level.
  uint32_t max_sweeps = 20;

  /// Stop a level when the modularity gain of a full sweep drops below this.
  double min_gain = 1e-7;

  /// Node-visit order seed (deterministic given this).
  uint64_t rng_seed = 0x10074172ULL;
};

/// Runs Louvain; returns the final flat partition of the input graph.
Result<Clustering> LouvainClustering(const Graph& graph,
                                     const LouvainOptions& options = {});

}  // namespace graph
}  // namespace scube

#endif  // SCUBE_GRAPH_LOUVAIN_H_
