#include "graph/louvain.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/random.h"

namespace scube {
namespace graph {

namespace {

// Internal multigraph with self-loops (the public Graph rejects them, but
// Louvain aggregation folds intra-community weight into loops, which must
// count toward node degrees for the modularity arithmetic to be right).
struct LGraph {
  // adj[u] = (v, w) with u != v; both directions stored.
  std::vector<std::vector<std::pair<uint32_t, double>>> adj;
  // loop[u] = self-loop weight (counts twice in the degree, as usual).
  std::vector<double> loop;
  // degree[u] = sum of incident weights + 2 * loop[u].
  std::vector<double> degree;
  double total_weight = 0.0;  // W: each edge once + loops once

  uint32_t NumNodes() const { return static_cast<uint32_t>(adj.size()); }
};

LGraph FromGraph(const Graph& graph) {
  LGraph lg;
  lg.adj.resize(graph.NumNodes());
  lg.loop.assign(graph.NumNodes(), 0.0);
  lg.degree.assign(graph.NumNodes(), 0.0);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (const Graph::Neighbor& n : graph.Neighbors(u)) {
      lg.adj[u].emplace_back(n.node, n.weight);
      lg.degree[u] += n.weight;
    }
  }
  lg.total_weight = graph.TotalWeight();
  return lg;
}

struct LevelResult {
  std::vector<uint32_t> labels;
  bool moved = false;
};

LevelResult LocalMoving(const LGraph& g, const LouvainOptions& options,
                        Rng* rng) {
  const uint32_t n = g.NumNodes();
  const double w2 = 2.0 * g.total_weight;
  LevelResult result;
  result.labels.resize(n);
  std::iota(result.labels.begin(), result.labels.end(), 0);
  if (w2 <= 0.0) return result;

  // Sum of degrees per community.
  std::vector<double> community_degree = g.degree;

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  std::unordered_map<uint32_t, double> weight_to_comm;
  for (uint32_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    bool sweep_moved = false;
    for (uint32_t u : order) {
      uint32_t current = result.labels[u];
      weight_to_comm.clear();
      for (const auto& [v, w] : g.adj[u]) {
        weight_to_comm[result.labels[v]] += w;
      }
      community_degree[current] -= g.degree[u];
      double w_current = 0.0;
      if (auto it = weight_to_comm.find(current); it != weight_to_comm.end()) {
        w_current = it->second;
      }
      // dQ(u -> c) = (w_to_c - k_u * deg_c / w2) * 2/w2; compare numerators.
      uint32_t best = current;
      double best_gain =
          w_current - g.degree[u] * community_degree[current] / w2;
      for (const auto& [comm, w] : weight_to_comm) {
        if (comm == current) continue;
        double gain = w - g.degree[u] * community_degree[comm] / w2;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best = comm;
        }
      }
      community_degree[best] += g.degree[u];
      if (best != current) {
        result.labels[u] = best;
        result.moved = true;
        sweep_moved = true;
      }
    }
    if (!sweep_moved) break;
  }
  return result;
}

LGraph Aggregate(const LGraph& g, const Clustering& clustering) {
  LGraph out;
  out.adj.resize(clustering.num_clusters);
  out.loop.assign(clustering.num_clusters, 0.0);
  out.degree.assign(clustering.num_clusters, 0.0);
  out.total_weight = g.total_weight;

  std::unordered_map<uint64_t, double> inter;
  for (uint32_t u = 0; u < g.NumNodes(); ++u) {
    uint32_t cu = clustering.labels[u];
    out.loop[cu] += g.loop[u];
    for (const auto& [v, w] : g.adj[u]) {
      if (u > v) continue;  // each undirected edge once
      uint32_t cv = clustering.labels[v];
      if (cu == cv) {
        out.loop[cu] += w;
      } else {
        uint64_t key = cu < cv ? (static_cast<uint64_t>(cu) << 32) | cv
                               : (static_cast<uint64_t>(cv) << 32) | cu;
        inter[key] += w;
      }
    }
  }
  for (const auto& [key, w] : inter) {
    uint32_t a = static_cast<uint32_t>(key >> 32);
    uint32_t b = static_cast<uint32_t>(key & 0xFFFFFFFFu);
    out.adj[a].emplace_back(b, w);
    out.adj[b].emplace_back(a, w);
    out.degree[a] += w;
    out.degree[b] += w;
  }
  for (uint32_t c = 0; c < clustering.num_clusters; ++c) {
    out.degree[c] += 2.0 * out.loop[c];
  }
  return out;
}

}  // namespace

Result<Clustering> LouvainClustering(const Graph& graph,
                                     const LouvainOptions& options) {
  if (options.max_levels == 0 || options.max_sweeps == 0) {
    return Status::InvalidArgument("max_levels and max_sweeps must be >= 1");
  }
  Rng rng(options.rng_seed);

  // flat[u] = community of u in the original graph.
  std::vector<uint32_t> flat(graph.NumNodes());
  std::iota(flat.begin(), flat.end(), 0);

  LGraph current = FromGraph(graph);
  for (uint32_t level = 0; level < options.max_levels; ++level) {
    LevelResult moved = LocalMoving(current, options, &rng);
    if (!moved.moved) break;
    Clustering normalized = NormalizeLabels(std::move(moved.labels));
    for (uint32_t& c : flat) c = normalized.labels[c];
    if (normalized.num_clusters == current.NumNodes()) break;
    current = Aggregate(current, normalized);
  }
  return NormalizeLabels(std::move(flat));
}

}  // namespace graph
}  // namespace scube
