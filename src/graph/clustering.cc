#include "graph/clustering.h"

#include <algorithm>
#include <unordered_map>

namespace scube {
namespace graph {

std::vector<uint32_t> Clustering::ClusterSizes() const {
  std::vector<uint32_t> sizes(num_clusters, 0);
  for (uint32_t label : labels) ++sizes[label];
  return sizes;
}

uint32_t Clustering::GiantSize() const {
  uint32_t giant = 0;
  for (uint32_t size : ClusterSizes()) giant = std::max(giant, size);
  return giant;
}

std::vector<std::vector<NodeId>> Clustering::Members() const {
  std::vector<std::vector<NodeId>> out(num_clusters);
  for (NodeId u = 0; u < labels.size(); ++u) out[labels[u]].push_back(u);
  return out;
}

Clustering NormalizeLabels(std::vector<uint32_t> raw_labels) {
  Clustering out;
  out.labels.resize(raw_labels.size());
  std::unordered_map<uint32_t, uint32_t> remap;
  for (size_t i = 0; i < raw_labels.size(); ++i) {
    auto [it, inserted] =
        remap.emplace(raw_labels[i], static_cast<uint32_t>(remap.size()));
    out.labels[i] = it->second;
  }
  out.num_clusters = static_cast<uint32_t>(remap.size());
  return out;
}

double Modularity(const Graph& graph, const Clustering& clustering) {
  double total = graph.TotalWeight();
  if (total <= 0.0) return 0.0;
  // Q = sum_c [ in_c/W2 - (deg_c/W2)^2 ], W2 = 2W, in_c = 2 * intra weight.
  std::vector<double> intra(clustering.num_clusters, 0.0);
  std::vector<double> degree(clustering.num_clusters, 0.0);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    uint32_t cu = clustering.labels[u];
    for (const Graph::Neighbor& n : graph.Neighbors(u)) {
      degree[cu] += n.weight;
      if (clustering.labels[n.node] == cu && u < n.node) {
        intra[cu] += n.weight;
      }
    }
  }
  double w2 = 2.0 * total;
  double q = 0.0;
  for (uint32_t c = 0; c < clustering.num_clusters; ++c) {
    q += 2.0 * intra[c] / w2 - (degree[c] / w2) * (degree[c] / w2);
  }
  return q;
}

double IntraClusterWeightFraction(const Graph& graph,
                                  const Clustering& clustering) {
  double total = graph.TotalWeight();
  if (total <= 0.0) return 0.0;
  double intra = 0.0;
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (const Graph::Neighbor& n : graph.Neighbors(u)) {
      if (u < n.node && clustering.labels[u] == clustering.labels[n.node]) {
        intra += n.weight;
      }
    }
  }
  return intra / total;
}

double AttributeHomogeneity(const NodeAttributes& attributes,
                            const Clustering& clustering, Rng* rng,
                            uint32_t num_samples) {
  auto members = clustering.Members();
  // Keep only clusters that can form pairs.
  std::vector<const std::vector<NodeId>*> eligible;
  std::vector<double> weights;
  for (const auto& m : members) {
    if (m.size() >= 2) {
      eligible.push_back(&m);
      weights.push_back(static_cast<double>(m.size()));
    }
  }
  if (eligible.empty() || num_samples == 0) return 0.0;
  double sum = 0.0;
  for (uint32_t s = 0; s < num_samples; ++s) {
    size_t c = rng->NextCategorical(weights);
    const auto& m = *eligible[c];
    NodeId a = m[rng->NextBounded(m.size())];
    NodeId b = m[rng->NextBounded(m.size())];
    while (b == a) b = m[rng->NextBounded(m.size())];
    sum += attributes.Jaccard(a, b);
  }
  return sum / num_samples;
}

}  // namespace graph
}  // namespace scube
