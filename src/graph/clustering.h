// Clustering: shared result type and quality metrics for the GraphClustering
// module (paper §3).

#ifndef SCUBE_GRAPH_CLUSTERING_H_
#define SCUBE_GRAPH_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "graph/graph.h"

namespace scube {
namespace graph {

/// \brief A partition of the nodes into dense-labelled clusters.
struct Clustering {
  /// labels[node] = cluster id in [0, num_clusters).
  std::vector<uint32_t> labels;
  uint32_t num_clusters = 0;

  size_t NumNodes() const { return labels.size(); }

  /// Per-cluster node counts.
  std::vector<uint32_t> ClusterSizes() const;

  /// Size of the largest cluster.
  uint32_t GiantSize() const;

  /// Members of each cluster (index = cluster id).
  std::vector<std::vector<NodeId>> Members() const;
};

/// Renumbers arbitrary labels into dense 0..k-1 (first-seen order).
Clustering NormalizeLabels(std::vector<uint32_t> raw_labels);

/// Newman-Girvan weighted modularity of the partition.
double Modularity(const Graph& graph, const Clustering& clustering);

/// Fraction of total edge weight that is intra-cluster.
double IntraClusterWeightFraction(const Graph& graph,
                                  const Clustering& clustering);

/// Mean attribute Jaccard similarity of random intra-cluster node pairs
/// (sampled; clusters of size 1 are skipped). Returns 0 when no pair exists.
double AttributeHomogeneity(const NodeAttributes& attributes,
                            const Clustering& clustering, Rng* rng,
                            uint32_t num_samples = 2000);

}  // namespace graph
}  // namespace scube

#endif  // SCUBE_GRAPH_CLUSTERING_H_
