// GraphBuilder: one-mode projection of the bipartite membership graph.
//
// Projects (individuals x groups) onto a unipartite graph of groups, where
// two groups are connected iff they share at least one individual; the edge
// weight is the number of shared individuals (paper §3, GraphBuilder).
// The symmetric projection onto individuals (scenario 2: directors connected
// when they sit on a common board) is also provided.

#ifndef SCUBE_GRAPH_PROJECTION_H_
#define SCUBE_GRAPH_PROJECTION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/bipartite.h"
#include "graph/graph.h"

namespace scube {
namespace graph {

/// Which side of the bipartite graph becomes the node set.
enum class ProjectionSide {
  kGroups,       ///< nodes = groups (companies); the paper's default
  kIndividuals,  ///< nodes = individuals (directors); scenario 2
};

/// \brief Projection parameters.
struct ProjectionOptions {
  ProjectionSide side = ProjectionSide::kGroups;

  /// Snapshot date; memberships not active at this date are ignored.
  Date date = 0;

  /// Entities on the *other* side connected to more than `hub_cap` nodes are
  /// skipped (a director sitting on hundreds of boards creates quadratic
  /// clique blow-up and carries little signal). 0 disables the cap.
  uint32_t hub_cap = 0;

  /// Drop projected edges with weight < min_weight (1 keeps all).
  double min_weight = 1.0;
};

/// \brief Projection output: graph + the paper's `isolated` node list.
struct ProjectionResult {
  Graph graph;
  /// Nodes with no projected edge (zero degree), ascending.
  std::vector<NodeId> isolated;
  /// Number of pivot entities skipped by the hub cap.
  uint64_t hubs_skipped = 0;
  /// Pairs accumulated before weight filtering.
  uint64_t raw_pairs = 0;
};

/// Computes the one-mode projection.
Result<ProjectionResult> ProjectBipartite(const BipartiteGraph& bipartite,
                                          const ProjectionOptions& options);

}  // namespace graph
}  // namespace scube

#endif  // SCUBE_GRAPH_PROJECTION_H_
