// SToC: attributed-graph clustering for very large graphs — the third
// GraphClustering method of the paper (Baroni, Conte, Patrignani, Ruggieri,
// ASONAM 2017 [3]).
//
// Faithful-in-spirit reimplementation: nodes are clustered by a *combined*
// similarity mixing topology and attributes,
//
//     sim(u,v) = alpha * J_top(u,v) + (1 - alpha) * J_att(u,v)
//
// where J_top is the Jaccard similarity of closed neighbourhoods and J_att
// the Jaccard similarity of attribute-token sets. The algorithm repeatedly
// picks an unassigned seed and grows a bounded-radius BFS ball of unassigned
// nodes whose combined similarity to the seed reaches the threshold tau.
// (The original accelerates J_* with LSH sketches; at this repository's
// scales exact similarities are computed instead — same clustering
// semantics, different constant factor.)

#ifndef SCUBE_GRAPH_STOC_H_
#define SCUBE_GRAPH_STOC_H_

#include "common/random.h"
#include "common/result.h"
#include "graph/clustering.h"
#include "graph/graph.h"

namespace scube {
namespace graph {

/// \brief SToC parameters.
struct StocOptions {
  /// Similarity threshold in [0,1]: a node joins the seed's cluster when
  /// sim(seed, node) >= tau.
  double tau = 0.3;

  /// Topology/attribute mix in [0,1]; 1 = pure topology, 0 = pure attributes.
  double alpha = 0.5;

  /// BFS ball radius around the seed (the original uses small radii).
  uint32_t max_radius = 2;

  /// Seed for the random seed-selection order (deterministic given this).
  uint64_t rng_seed = 0x570CULL;
};

/// Runs SToC. `attributes` must cover every node of `graph`.
Result<Clustering> StocClustering(const Graph& graph,
                                  const NodeAttributes& attributes,
                                  const StocOptions& options);

/// The combined similarity used by SToC (exposed for tests/benches).
double StocSimilarity(const Graph& graph, const NodeAttributes& attributes,
                      NodeId u, NodeId v, double alpha);

}  // namespace graph
}  // namespace scube

#endif  // SCUBE_GRAPH_STOC_H_
