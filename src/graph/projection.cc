#include "graph/projection.h"

#include <algorithm>
#include <unordered_map>

namespace scube {
namespace graph {

Result<ProjectionResult> ProjectBipartite(const BipartiteGraph& bipartite,
                                          const ProjectionOptions& options) {
  if (options.min_weight < 0.0) {
    return Status::InvalidArgument("min_weight must be non-negative");
  }

  // Pivot lists: for each entity on the non-projected side, the nodes it
  // connects. Every pivot contributes a clique over its list.
  std::vector<std::vector<NodeId>> pivots;
  uint32_t num_nodes;
  if (options.side == ProjectionSide::kGroups) {
    pivots = bipartite.GroupsByIndividual(options.date);
    num_nodes = bipartite.NumGroups();
  } else {
    pivots = bipartite.IndividualsByGroup(options.date);
    num_nodes = bipartite.NumIndividuals();
  }

  ProjectionResult out;
  std::unordered_map<uint64_t, double> pair_weight;
  for (const auto& list : pivots) {
    if (options.hub_cap > 0 && list.size() > options.hub_cap) {
      ++out.hubs_skipped;
      continue;
    }
    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = i + 1; j < list.size(); ++j) {
        uint64_t key = (static_cast<uint64_t>(list[i]) << 32) | list[j];
        pair_weight[key] += 1.0;
      }
    }
  }
  out.raw_pairs = pair_weight.size();

  std::vector<WeightedEdge> edges;
  edges.reserve(pair_weight.size());
  for (const auto& [key, weight] : pair_weight) {
    if (weight >= options.min_weight) {
      edges.push_back(WeightedEdge{static_cast<NodeId>(key >> 32),
                                   static_cast<NodeId>(key & 0xFFFFFFFFu),
                                   weight});
    }
  }
  auto graph = Graph::FromEdges(num_nodes, edges);
  if (!graph.ok()) return graph.status();
  out.graph = std::move(graph).value();

  for (NodeId u = 0; u < num_nodes; ++u) {
    if (out.graph.Degree(u) == 0) out.isolated.push_back(u);
  }
  return out;
}

}  // namespace graph
}  // namespace scube
