// Weight-threshold clustering — the second GraphClustering method of the
// paper: "removal of edges from the giant component with weight below a
// threshold and then extraction of connected components" (designed in [4]).

#ifndef SCUBE_GRAPH_THRESHOLD_CLUSTERING_H_
#define SCUBE_GRAPH_THRESHOLD_CLUSTERING_H_

#include "common/result.h"
#include "graph/clustering.h"
#include "graph/graph.h"

namespace scube {
namespace graph {

/// \brief Parameters for threshold clustering.
struct ThresholdClusteringOptions {
  /// Edges with weight < min_weight are removed before re-extraction.
  double min_weight = 2.0;

  /// When true (the variant of [4]), the threshold is applied only to edges
  /// inside the giant component; smaller components are kept intact. When
  /// false, the threshold applies to every edge.
  bool giant_only = true;
};

/// Runs the method: connected components, optional restriction to the giant
/// component, weak-edge removal, and component re-extraction.
Result<Clustering> ThresholdClustering(const Graph& graph,
                                       const ThresholdClusteringOptions& opts);

}  // namespace graph
}  // namespace scube

#endif  // SCUBE_GRAPH_THRESHOLD_CLUSTERING_H_
