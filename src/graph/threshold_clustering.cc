#include "graph/threshold_clustering.h"

#include <algorithm>

#include "graph/connected_components.h"

namespace scube {
namespace graph {

Result<Clustering> ThresholdClustering(
    const Graph& graph, const ThresholdClusteringOptions& opts) {
  if (opts.min_weight < 0.0) {
    return Status::InvalidArgument("min_weight must be non-negative");
  }

  if (!opts.giant_only) {
    return ConnectedComponents(graph.FilterEdges(opts.min_weight));
  }

  Clustering base = ConnectedComponents(graph);
  std::vector<uint32_t> sizes = base.ClusterSizes();
  uint32_t giant = 0;
  for (uint32_t c = 1; c < base.num_clusters; ++c) {
    if (sizes[c] > sizes[giant]) giant = c;
  }

  // Remove weak edges inside the giant component only.
  std::vector<WeightedEdge> kept;
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (const Graph::Neighbor& n : graph.Neighbors(u)) {
      if (u >= n.node) continue;
      bool in_giant =
          base.labels[u] == giant && base.labels[n.node] == giant;
      if (!in_giant || n.weight >= opts.min_weight) {
        kept.push_back(WeightedEdge{u, n.node, n.weight});
      }
    }
  }
  auto filtered = Graph::FromEdges(graph.NumNodes(), kept);
  if (!filtered.ok()) return filtered.status();
  return ConnectedComponents(filtered.value());
}

}  // namespace graph
}  // namespace scube
