#include "graph/graph.h"

#include <algorithm>

namespace scube {
namespace graph {

Result<Graph> Graph::FromEdges(uint32_t num_nodes,
                               const std::vector<WeightedEdge>& edges) {
  for (const WeightedEdge& e : edges) {
    if (e.u == e.v) {
      return Status::InvalidArgument("self-loop at node " +
                                     std::to_string(e.u));
    }
    if (e.u >= num_nodes || e.v >= num_nodes) {
      return Status::OutOfRange("edge endpoint exceeds num_nodes");
    }
    if (e.weight <= 0.0) {
      return Status::InvalidArgument("edge weights must be positive");
    }
  }

  // Merge parallel edges: sort canonical (min,max) pairs.
  std::vector<WeightedEdge> canon;
  canon.reserve(edges.size());
  for (const WeightedEdge& e : edges) {
    canon.push_back(e.u < e.v ? e : WeightedEdge{e.v, e.u, e.weight});
  }
  std::sort(canon.begin(), canon.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  std::vector<WeightedEdge> merged;
  merged.reserve(canon.size());
  for (const WeightedEdge& e : canon) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().weight += e.weight;
    } else {
      merged.push_back(e);
    }
  }

  Graph g;
  g.num_nodes_ = num_nodes;
  std::vector<uint32_t> degree(num_nodes, 0);
  for (const WeightedEdge& e : merged) {
    ++degree[e.u];
    ++degree[e.v];
    g.total_weight_ += e.weight;
  }
  g.offsets_.assign(num_nodes + 1, 0);
  for (uint32_t u = 0; u < num_nodes; ++u) {
    g.offsets_[u + 1] = g.offsets_[u] + degree[u];
  }
  g.adjacency_.resize(g.offsets_[num_nodes]);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const WeightedEdge& e : merged) {
    g.adjacency_[cursor[e.u]++] = Neighbor{e.v, e.weight};
    g.adjacency_[cursor[e.v]++] = Neighbor{e.u, e.weight};
  }
  // merged is sorted by (u,v); insertion order guarantees per-node adjacency
  // sorted for the u side but not for the v side: sort each range.
  for (uint32_t u = 0; u < num_nodes; ++u) {
    std::sort(g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[u]),
              g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[u + 1]),
              [](const Neighbor& a, const Neighbor& b) {
                return a.node < b.node;
              });
  }
  return g;
}

double Graph::WeightedDegree(NodeId u) const {
  double sum = 0.0;
  for (const Neighbor& n : Neighbors(u)) sum += n.weight;
  return sum;
}

double Graph::EdgeWeight(NodeId u, NodeId v) const {
  auto span = Neighbors(u);
  auto it = std::lower_bound(
      span.begin(), span.end(), v,
      [](const Neighbor& n, NodeId target) { return n.node < target; });
  if (it != span.end() && it->node == v) return it->weight;
  return 0.0;
}

Graph Graph::FilterEdges(double min_weight) const {
  std::vector<WeightedEdge> kept;
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    for (const Neighbor& n : Neighbors(u)) {
      if (u < n.node && n.weight >= min_weight) {
        kept.push_back(WeightedEdge{u, n.node, n.weight});
      }
    }
  }
  auto g = FromEdges(num_nodes_, kept);
  return std::move(g).value();  // inputs come from a valid graph
}

std::vector<WeightedEdge> Graph::Edges() const {
  std::vector<WeightedEdge> out;
  out.reserve(NumEdges());
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    for (const Neighbor& n : Neighbors(u)) {
      if (u < n.node) out.push_back(WeightedEdge{u, n.node, n.weight});
    }
  }
  return out;
}

void NodeAttributes::SetTokens(NodeId node, std::vector<uint32_t> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  tokens_[node] = std::move(tokens);
}

double NodeAttributes::Jaccard(NodeId a, NodeId b) const {
  const auto& ta = tokens_[a];
  const auto& tb = tokens_[b];
  if (ta.empty() && tb.empty()) return 1.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < ta.size() && j < tb.size()) {
    if (ta[i] == tb[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (ta[i] < tb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = ta.size() + tb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace graph
}  // namespace scube
