// CubeView: the sealed, immutable, indexed read side of the segregation
// cube (build -> seal -> publish -> query lifecycle).
//
// A SegregationCube is the mutable build-side container; Seal() freezes it
// into a CubeView that owns a dense, coordinate-sorted cell array plus the
// secondary structures every read path needs:
//
//   - a coordinate -> cell-id map for point lookups,
//   - per-item SA/CA inverted lists (posting lists), so DICE-style
//     containment queries intersect sorted id lists instead of scanning,
//   - exact-coordinate slice groups (all cells sharing one SA or CA
//     itemset), so SLICE is a hash lookup returning a span,
//   - roll-up / drill-down adjacency lists in CSR form, so parent/child
//     navigation and the explorer's SURPRISES/REVERSALS walk arrays with
//     no per-call hashing,
//   - per-index ranked orders (defined cells by value descending), so
//     top-k queries walk a precomputed order instead of sorting per call.
//
// A CubeView is immutable after construction and therefore safe to share
// across threads without locks; the serving layer publishes
// shared_ptr<const CubeView> snapshots.

#ifndef SCUBE_CUBE_CUBE_VIEW_H_
#define SCUBE_CUBE_CUBE_VIEW_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cube/cell.h"
#include "indexes/segregation_index.h"
#include "relational/transactions.h"

namespace scube {
namespace cube {

/// \brief Immutable, indexed snapshot of a segregation cube.
class CubeView {
 public:
  /// Index into Cells(); stable for the lifetime of the view.
  using CellId = uint32_t;
  static constexpr CellId kNoCell = std::numeric_limits<CellId>::max();

  CubeView() = default;

  /// Builds the view from raw parts. `SegregationCube::Seal()` is the
  /// intended entry point; this constructor exists for it and for tests.
  /// Cells must have distinct coordinates (any order; they are sorted).
  /// `num_threads` parallelises index construction on the shared pool
  /// (1 = sequential, 0 = hardware concurrency); the finished view is
  /// identical for every value — the SA/CA posting builds, slice-group
  /// builds, per-cell parent probes and the six ranked sorts run as
  /// independent tasks whose outputs depend only on the sorted cells.
  CubeView(relational::ItemCatalog catalog,
           std::vector<std::string> unit_labels,
           std::vector<CubeCell> cells, size_t num_threads = 1);

  const relational::ItemCatalog& catalog() const { return catalog_; }
  const std::vector<std::string>& unit_labels() const { return unit_labels_; }

  size_t NumCells() const { return cells_.size(); }
  size_t NumDefinedCells() const { return num_defined_; }

  /// All cells, sorted by coordinate. A stable span into the view — no
  /// allocation, no per-call sort (unlike SegregationCube::Cells()).
  std::span<const CubeCell> Cells() const { return cells_; }

  /// Cell payload by id. Ids are ordinals into Cells(), so ascending id
  /// order is ascending coordinate order.
  const CubeCell& cell(CellId id) const { return cells_[id]; }

  /// Point lookups.
  CellId FindId(const CellCoordinates& coords) const;
  const CubeCell* Find(const CellCoordinates& coords) const;
  const CubeCell* Find(const fpm::Itemset& sa, const fpm::Itemset& ca) const;

  /// Posting lists: ids of cells whose SA (resp. CA) coordinate *contains*
  /// the item, ascending. Empty span for items absent from every cell.
  std::span<const CellId> SaPostings(fpm::ItemId item) const;
  std::span<const CellId> CaPostings(fpm::ItemId item) const;

  /// Exact-coordinate slices: ids of cells whose SA (resp. CA) coordinate
  /// *equals* the itemset, ascending (= coordinate order).
  std::span<const CellId> SliceBySa(const fpm::Itemset& sa) const;
  std::span<const CellId> SliceByCa(const fpm::Itemset& ca) const;

  /// Roll-up parents of an existing cell, in item-removal order: SA items
  /// ascending, then CA items ascending (absent parents skipped) — the
  /// order the mutable cube's Parents() produced.
  std::span<const CellId> Parents(CellId id) const;

  /// Drill-down children of an existing cell, in coordinate order.
  std::span<const CellId> Children(CellId id) const;

  /// Parents/children of arbitrary coordinates (present in the cube or
  /// not). Present cells use the precomputed adjacency; absent ones fall
  /// back to coordinate probes against the id map. Same orders as above.
  std::vector<CellId> ParentsOf(const CellCoordinates& coords) const;
  std::vector<CellId> ChildrenOf(const CellCoordinates& coords) const;

  /// Subcube selection: ids of cells whose SA contains every item of `sa`
  /// AND whose CA contains every item of `ca`, ascending. Intersects the
  /// posting lists of the constraint items (no constraints = all cells).
  /// When `examined` is non-null it receives the number of candidate ids
  /// inspected (the shortest posting list, or NumCells when unconstrained).
  std::vector<CellId> Dice(const fpm::Itemset& sa, const fpm::Itemset& ca,
                           uint64_t* examined = nullptr) const;

  /// Streaming subcube selection: `visit(id)` is invoked for each matching
  /// cell in ascending id order; returning false stops the intersection
  /// immediately (LIMIT pushdown). `tick()` is probed once per *candidate*
  /// examined — matching or not — and returning false aborts the walk
  /// (deadline pushdown; selective intersections can examine many
  /// candidates between matches). Returns false iff a callback stopped the
  /// walk early. `examined` receives the candidates inspected so far in
  /// either case (written at exit, not per candidate).
  ///
  /// Templated on the callables so the hot intersection loop pays no
  /// std::function dispatch per candidate; defined inline below.
  template <typename Visit, typename Tick>
  bool DiceVisit(const fpm::Itemset& sa, const fpm::Itemset& ca,
                 uint64_t* examined, Visit&& visit, Tick&& tick) const;

  template <typename Visit>
  bool DiceVisit(const fpm::Itemset& sa, const fpm::Itemset& ca,
                 uint64_t* examined, Visit&& visit) const {
    return DiceVisit(sa, ca, examined, std::forward<Visit>(visit),
                     [] { return true; });
  }

  /// Ids of *defined* cells ordered by the given index descending,
  /// coordinate-ascending on ties — the precomputed top-k order.
  std::span<const CellId> RankedByIndex(indexes::IndexKind kind) const;

  /// Human-readable cell label: "sex=F & age=young | region=north".
  std::string LabelOf(const CellCoordinates& coords) const;

  /// CSV export, one row per cell — the paper's cube.csv artifact.
  std::string ToCsv() const;

 private:
  /// CSR adjacency / posting storage: ids_[offsets_[k] .. offsets_[k+1]).
  struct Csr {
    std::vector<uint32_t> offsets;
    std::vector<CellId> ids;
    std::span<const CellId> row(size_t k) const {
      if (k + 1 >= offsets.size()) return {};
      return std::span<const CellId>(ids).subspan(offsets[k],
                                                  offsets[k + 1] - offsets[k]);
    }
  };

  using SliceGroups =
      std::unordered_map<fpm::Itemset, std::vector<CellId>, fpm::ItemsetHash>;

  void BuildPostings(bool sa_axis, Csr* csr);
  void BuildSliceGroups(bool sa_axis, SliceGroups* groups);
  void BuildAdjacency(size_t num_threads);
  void BuildRankedOrder(indexes::IndexKind kind,
                        const std::vector<CellId>& defined);

  /// One-item-removal parent probe, in the contract order (SA items
  /// ascending, then CA); shared by BuildAdjacency and ParentsOf.
  std::vector<CellId> ProbeParents(const CellCoordinates& coords) const;

  relational::ItemCatalog catalog_;
  std::vector<std::string> unit_labels_;
  std::vector<CubeCell> cells_;  ///< sorted by coordinate
  size_t num_defined_ = 0;
  size_t num_items_ = 0;  ///< posting-list universe: max item id + 1

  std::unordered_map<CellCoordinates, CellId, CellCoordinatesHash>
      id_by_coords_;

  Csr sa_postings_;
  Csr ca_postings_;
  SliceGroups sa_groups_;
  SliceGroups ca_groups_;
  Csr parents_;
  Csr children_;
  std::array<std::vector<CellId>, indexes::kNumIndexKinds> ranked_;
};

template <typename Visit, typename Tick>
bool CubeView::DiceVisit(const fpm::Itemset& sa, const fpm::Itemset& ca,
                         uint64_t* examined, Visit&& visit,
                         Tick&& tick) const {
  // `examined` is written only at the exit points, not per candidate —
  // the intersection loop is hot.
  uint64_t seen = 0;
  auto done = [&seen, examined](bool completed) {
    if (examined != nullptr) *examined = seen;
    return completed;
  };

  std::vector<std::span<const CellId>> lists;
  lists.reserve(sa.size() + ca.size());
  for (fpm::ItemId item : sa.items()) lists.push_back(SaPostings(item));
  for (fpm::ItemId item : ca.items()) lists.push_back(CaPostings(item));

  if (lists.empty()) {
    // No constraints: every cell matches, in id order.
    for (size_t i = 0; i < cells_.size(); ++i) {
      ++seen;
      if (!tick()) return done(false);
      if (!visit(static_cast<CellId>(i))) return done(false);
    }
    return done(true);
  }

  // Drive the intersection from the shortest posting list; membership in
  // the others is a binary search over sorted ids.
  size_t shortest = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size() < lists[shortest].size()) shortest = i;
  }
  for (CellId id : lists[shortest]) {
    ++seen;
    if (!tick()) return done(false);
    bool in_all = true;
    for (size_t i = 0; i < lists.size() && in_all; ++i) {
      if (i == shortest) continue;
      in_all = std::binary_search(lists[i].begin(), lists[i].end(), id);
    }
    if (in_all && !visit(id)) return done(false);
  }
  return done(true);
}

}  // namespace cube
}  // namespace scube

#endif  // SCUBE_CUBE_CUBE_VIEW_H_
