// SegregationCube: the multi-dimensional segregation data cube (paper §2).
//
// Cells are addressed by (SA itemset, CA itemset) coordinates; metrics are
// the six segregation indexes. The cube owns the item catalog so cells can
// be labelled, navigated by attribute, and exported.
//
// This is the *mutable build-side* container: builders Insert() cells into
// it, then Seal() freezes the result into an immutable, indexed CubeView
// (cube/cube_view.h) — the structure every read path (explorer, SCubeQL
// executor, serving layer, viz) consumes. The scan accessors kept here
// (Cells / SliceBySa / SliceByCa / Parents / Children) are the O(all
// cells) naive reference implementations; tests use them to validate the
// sealed view's indexes, production code should query the view.

#ifndef SCUBE_CUBE_CUBE_H_
#define SCUBE_CUBE_CUBE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "cube/cell.h"
#include "relational/transactions.h"

namespace scube {
namespace cube {

class CubeView;

/// \brief Materialised segregation data cube (mutable build side).
class SegregationCube {
 public:
  SegregationCube() = default;
  SegregationCube(relational::ItemCatalog catalog,
                  std::vector<std::string> unit_labels)
      : catalog_(std::move(catalog)), unit_labels_(std::move(unit_labels)) {}

  /// The item catalog mapping items to (attribute, value) pairs.
  const relational::ItemCatalog& catalog() const { return catalog_; }

  /// Labels of the organisational units the indexes were computed over.
  const std::vector<std::string>& unit_labels() const { return unit_labels_; }

  /// Inserts or replaces a cell.
  void Insert(CubeCell cell);

  /// Cell at the given coordinates, or nullptr.
  const CubeCell* Find(const CellCoordinates& coords) const;
  const CubeCell* Find(const fpm::Itemset& sa, const fpm::Itemset& ca) const;

  size_t NumCells() const { return cells_.size(); }
  size_t NumDefinedCells() const;

  /// Freezes the cube into an immutable, indexed CubeView. The const
  /// overload copies the cells (the cube stays usable for further builds);
  /// the rvalue overload moves cells, catalog and labels into the view.
  /// `num_threads` parallelises the view's index construction (posting
  /// lists, slice groups, adjacency, ranked orders) on the shared pool:
  /// 1 = sequential, 0 = all hardware threads, N = at most N threads.
  /// The sealed view is identical for every setting.
  CubeView Seal(size_t num_threads = 1) const&;
  CubeView Seal(size_t num_threads = 1) &&;

  /// All cells in deterministic order (by coordinate). Allocates and sorts
  /// per call — the naive reference path; sealed views expose a stable,
  /// pre-sorted span instead (CubeView::Cells()).
  std::vector<const CubeCell*> Cells() const;

  /// Cells with the exact SA coordinates (any context).
  std::vector<const CubeCell*> SliceBySa(const fpm::Itemset& sa) const;

  /// Cells with the exact CA coordinates (any subgroup).
  std::vector<const CubeCell*> SliceByCa(const fpm::Itemset& ca) const;

  /// Roll-up parents of a cell: every coordinate obtained by removing one
  /// item from SA or from CA (present-in-cube ones only).
  std::vector<const CubeCell*> Parents(const CellCoordinates& coords) const;

  /// Drill-down children: cells whose coordinates extend `coords` by exactly
  /// one item (on either axis).
  std::vector<const CubeCell*> Children(const CellCoordinates& coords) const;

  /// Human-readable cell label: "sex=F & age=young | region=north".
  std::string LabelOf(const CellCoordinates& coords) const;

  /// CSV export: one row per cell with labels, T, M, n and all six indexes
  /// ("" for undefined). The format of the paper's cube.csv artifact.
  std::string ToCsv() const;

 private:
  relational::ItemCatalog catalog_;
  std::vector<std::string> unit_labels_;
  std::unordered_map<CellCoordinates, CubeCell, CellCoordinatesHash> cells_;
};

}  // namespace cube
}  // namespace scube

#endif  // SCUBE_CUBE_CUBE_H_
