#include "cube/builder.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "fpm/registry.h"
#include "indexes/counts.h"

namespace scube {
namespace cube {

namespace {

// Sparse per-unit histogram built by bucketing a cover through row_unit.
// A dense scratch array plus a touched list keeps resets O(#touched).
class UnitHistogrammer {
 public:
  explicit UnitHistogrammer(size_t num_units) : counts_(num_units, 0) {}

  // Returns (unit, count) pairs sorted by unit, and the cover cardinality.
  std::vector<std::pair<uint32_t, uint64_t>> Histogram(
      const EwahBitmap& cover, const std::vector<uint32_t>& row_unit) {
    for (uint32_t unit : touched_) counts_[unit] = 0;
    touched_.clear();
    cover.ForEach([this, &row_unit](uint64_t row) {
      uint32_t unit = row_unit[row];
      if (counts_[unit] == 0) touched_.push_back(unit);
      ++counts_[unit];
    });
    std::sort(touched_.begin(), touched_.end());
    std::vector<std::pair<uint32_t, uint64_t>> out;
    out.reserve(touched_.size());
    for (uint32_t unit : touched_) out.emplace_back(unit, counts_[unit]);
    return out;
  }

 private:
  std::vector<uint64_t> counts_;
  std::vector<uint32_t> touched_;
};

// All candidate cells sharing one context B: the context's cover,
// histogram and total are computed exactly once, by exactly one worker.
struct ContextGroup {
  fpm::Itemset ca;
  std::vector<fpm::Itemset> sas;  // one cell per entry, mined order
};

// Per-worker mutable state: no worker ever touches another worker's
// scratch, so the fill needs no locks at all.
struct WorkerScratch {
  explicit WorkerScratch(size_t num_units)
      : histogrammer(num_units), minority_counts(num_units, 0) {}

  UnitHistogrammer histogrammer;
  std::vector<uint64_t> minority_counts;  // dense m_i scratch
  std::vector<uint32_t> touched;          // units with minority_counts != 0
  std::vector<fpm::ItemId> sa_by_size;    // SA items, support-ascending
};

// Fills every cell of one context group into `out_cells` (same order as
// grp.sas). Returns the first index-computation error, if any.
Status FillContextGroup(const relational::EncodedRelation& encoded,
                        const CubeBuilderOptions& options,
                        const ContextGroup& grp, WorkerScratch& ws,
                        std::vector<CubeCell>* out_cells) {
  const EwahBitmap ctx_cover = encoded.db.Cover(grp.ca);
  const uint64_t ctx_total = ctx_cover.Cardinality();
  const std::vector<std::pair<uint32_t, uint64_t>> unit_totals =
      ws.histogrammer.Histogram(ctx_cover, encoded.row_unit);

  out_cells->reserve(grp.sas.size());
  for (const fpm::Itemset& sa : grp.sas) {
    // Minority cover: cover(A ∪ B) = cover(B) ∩ item covers of A.
    // Intersect smallest-cardinality-first so intermediates shrink as
    // fast as possible, and chain through one scratch bitmap instead of
    // copying ctx_cover up front and reallocating per And.
    std::vector<fpm::ItemId>& by_size = ws.sa_by_size;
    by_size.assign(sa.items().begin(), sa.items().end());
    std::stable_sort(by_size.begin(), by_size.end(),
                     [&](fpm::ItemId a, fpm::ItemId b) {
                       return encoded.db.ItemSupport(a) <
                              encoded.db.ItemSupport(b);
                     });
    const EwahBitmap* minority = &ctx_cover;
    EwahBitmap scratch;
    for (fpm::ItemId item : by_size) {
      scratch = minority->And(encoded.db.ItemCover(item));
      minority = &scratch;
    }

    CubeCell cell;
    cell.coords = CellCoordinates{sa, grp.ca};
    cell.context_size = ctx_total;
    cell.minority_size = minority->Cardinality();
    cell.num_units = static_cast<uint32_t>(unit_totals.size());

    // Per-unit minority counts.
    ws.touched.clear();
    minority->ForEach([&](uint64_t row) {
      uint32_t unit = encoded.row_unit[row];
      if (ws.minority_counts[unit] == 0) ws.touched.push_back(unit);
      ++ws.minority_counts[unit];
    });
    indexes::GroupDistribution dist;
    for (const auto& [unit, t] : unit_totals) {
      dist.AddUnit(t, ws.minority_counts[unit]);
    }
    for (uint32_t unit : ws.touched) ws.minority_counts[unit] = 0;

    auto idx = indexes::ComputeAllIndexes(dist, options.index_params);
    if (!idx.ok()) return idx.status();
    cell.indexes = idx.value();
    out_cells->push_back(std::move(cell));
  }
  return Status::OK();
}

}  // namespace

Result<SegregationCube> BuildSegregationCube(
    const relational::EncodedRelation& encoded,
    const CubeBuilderOptions& options, CubeBuildStats* stats) {
  CubeBuildStats local_stats;
  CubeBuildStats* st = stats != nullptr ? stats : &local_stats;
  *st = CubeBuildStats{};

  if (options.max_sa_items == 0) {
    return Status::InvalidArgument("max_sa_items must be >= 1");
  }
  const size_t num_rows = encoded.db.NumTransactions();
  if (num_rows == 0) {
    return Status::FailedPrecondition("finalTable has no rows");
  }

  uint64_t min_support = options.min_support;
  if (options.min_support_fraction > 0.0) {
    min_support = std::max(
        min_support, static_cast<uint64_t>(std::ceil(
                         options.min_support_fraction * num_rows)));
  }
  if (min_support < 1) min_support = 1;

  // --- Mining -------------------------------------------------------------
  WallTimer timer;
  trace::Span mine_span(options.trace, "build.mine");
  auto miner = fpm::MakeMiner(options.miner);
  if (!miner.ok()) return miner.status();
  fpm::MinerOptions mine_opts;
  mine_opts.min_support = min_support;
  mine_opts.max_length = options.max_sa_items + options.max_ca_items;
  mine_opts.mode = options.mode;
  mine_opts.include_empty = true;  // the all-⋆ root and pure-SA cells
  auto mined = miner.value()->Mine(encoded.db, mine_opts);
  if (!mined.ok()) return mined.status();
  mine_span.End();
  st->seconds_mining = timer.Seconds();
  st->mined_itemsets = mined.value().size();

  // --- Grouping prepass ---------------------------------------------------
  // Split/filter every mined itemset and group the survivors by context B,
  // in first-seen (mined) order. Workers then own whole groups, so a
  // context's cover and histogram are computed exactly once with no shared
  // memo map to contend on.
  timer.Reset();
  trace::Span group_span(options.trace, "build.group");
  std::vector<ContextGroup> groups;
  std::unordered_map<fpm::Itemset, size_t, fpm::ItemsetHash> group_of;
  for (const fpm::FrequentItemset& fs : mined.value()) {
    fpm::Itemset sa, ca;
    encoded.catalog.Split(fs.items, &sa, &ca);
    if (sa.size() > options.max_sa_items) continue;
    if (ca.size() > options.max_ca_items) continue;
    auto [it, inserted] = group_of.try_emplace(ca, groups.size());
    if (inserted) groups.push_back(ContextGroup{std::move(ca), {}});
    groups[it->second].sas.push_back(std::move(sa));
  }
  // TransactionDb builds item covers lazily behind a const facade; force
  // them (and the support cache) into existence before any worker reads.
  if (encoded.db.NumItems() > 0) encoded.db.ItemCover(0);
  group_span.End();
  st->seconds_grouping = timer.Seconds();

  // --- Filling ------------------------------------------------------------
  timer.Reset();
  trace::Span fill_span(options.trace, "build.fill");
  SegregationCube cube(encoded.catalog, encoded.unit_labels);
  size_t threads =
      std::min(ThreadPool::EffectiveThreads(options.num_threads),
               std::max<size_t>(1, groups.size()));
  if (threads > 1) {
    // The shared pool caps achievable parallelism at its worker count
    // plus the calling thread; report what can actually run, not what
    // was asked for.
    threads = std::min(threads, ThreadPool::Shared().num_threads() + 1);
  }
  st->threads_used = static_cast<uint32_t>(threads);

  std::vector<std::vector<CubeCell>> group_cells(groups.size());
  std::vector<Status> group_status(groups.size());
  const size_t num_units = encoded.unit_labels.size();
  // The explicit sequential branch keeps single-threaded builds from
  // instantiating the process-wide pool (ParallelFor would work, but
  // Shared() spawns hardware_concurrency workers on first touch).
  if (threads <= 1) {
    WorkerScratch scratch(num_units);
    for (size_t g = 0; g < groups.size(); ++g) {
      group_status[g] = FillContextGroup(encoded, options, groups[g], scratch,
                                         &group_cells[g]);
    }
  } else {
    std::vector<std::unique_ptr<WorkerScratch>> scratch(threads);
    ThreadPool::Shared().ParallelFor(
        groups.size(), threads, [&](size_t worker, size_t g) {
          if (scratch[worker] == nullptr) {
            scratch[worker] = std::make_unique<WorkerScratch>(num_units);
          }
          group_status[g] = FillContextGroup(encoded, options, groups[g],
                                             *scratch[worker], &group_cells[g]);
        });
  }

  // Deterministic merge: group order, then mined order within the group —
  // the same cells, values and stats as the sequential fill, bit for bit.
  for (size_t g = 0; g < groups.size(); ++g) {
    if (!group_status[g].ok()) return group_status[g];
    for (CubeCell& cell : group_cells[g]) {
      if (cell.indexes.defined) ++st->cells_defined;
      ++st->cells_created;
      cube.Insert(std::move(cell));
    }
  }
  fill_span.End();
  st->seconds_filling = timer.Seconds();
  st->contexts_memoized = groups.size();
  return cube;
}

Result<SegregationCube> BuildSegregationCube(
    const relational::Table& final_table, const CubeBuilderOptions& options,
    CubeBuildStats* stats) {
  WallTimer timer;
  trace::Span encode_span(options.trace, "build.encode");
  auto encoded = relational::EncodeForAnalysis(final_table);
  encode_span.End();
  if (!encoded.ok()) return encoded.status();
  double encode_secs = timer.Seconds();
  auto cube = BuildSegregationCube(encoded.value(), options, stats);
  if (cube.ok() && stats != nullptr) stats->seconds_encoding = encode_secs;
  return cube;
}

}  // namespace cube
}  // namespace scube
