#include "cube/builder.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/timer.h"
#include "fpm/registry.h"
#include "indexes/counts.h"

namespace scube {
namespace cube {

namespace {

// Sparse per-unit histogram built by bucketing a cover through row_unit.
// A dense scratch array plus a touched list keeps resets O(#touched).
class UnitHistogrammer {
 public:
  explicit UnitHistogrammer(size_t num_units) : counts_(num_units, 0) {}

  // Returns (unit, count) pairs sorted by unit, and the cover cardinality.
  std::vector<std::pair<uint32_t, uint64_t>> Histogram(
      const EwahBitmap& cover, const std::vector<uint32_t>& row_unit) {
    for (uint32_t unit : touched_) counts_[unit] = 0;
    touched_.clear();
    cover.ForEach([this, &row_unit](uint64_t row) {
      uint32_t unit = row_unit[row];
      if (counts_[unit] == 0) touched_.push_back(unit);
      ++counts_[unit];
    });
    std::sort(touched_.begin(), touched_.end());
    std::vector<std::pair<uint32_t, uint64_t>> out;
    out.reserve(touched_.size());
    for (uint32_t unit : touched_) out.emplace_back(unit, counts_[unit]);
    return out;
  }

 private:
  std::vector<uint64_t> counts_;
  std::vector<uint32_t> touched_;
};

// Memoised statistics of one context B.
struct ContextStats {
  EwahBitmap cover;
  uint64_t total = 0;  // T
  std::vector<std::pair<uint32_t, uint64_t>> unit_totals;  // (unit, t_i)
};

}  // namespace

Result<SegregationCube> BuildSegregationCube(
    const relational::EncodedRelation& encoded,
    const CubeBuilderOptions& options, CubeBuildStats* stats) {
  CubeBuildStats local_stats;
  CubeBuildStats* st = stats != nullptr ? stats : &local_stats;
  *st = CubeBuildStats{};

  if (options.max_sa_items == 0) {
    return Status::InvalidArgument("max_sa_items must be >= 1");
  }
  const size_t num_rows = encoded.db.NumTransactions();
  if (num_rows == 0) {
    return Status::FailedPrecondition("finalTable has no rows");
  }

  uint64_t min_support = options.min_support;
  if (options.min_support_fraction > 0.0) {
    min_support = std::max(
        min_support, static_cast<uint64_t>(std::ceil(
                         options.min_support_fraction * num_rows)));
  }
  if (min_support < 1) min_support = 1;

  // --- Mining -------------------------------------------------------------
  WallTimer timer;
  auto miner = fpm::MakeMiner(options.miner);
  if (!miner.ok()) return miner.status();
  fpm::MinerOptions mine_opts;
  mine_opts.min_support = min_support;
  mine_opts.max_length = options.max_sa_items + options.max_ca_items;
  mine_opts.mode = options.mode;
  mine_opts.include_empty = true;  // the all-⋆ root and pure-SA cells
  auto mined = miner.value()->Mine(encoded.db, mine_opts);
  if (!mined.ok()) return mined.status();
  st->seconds_mining = timer.Seconds();
  st->mined_itemsets = mined.value().size();

  // --- Filling ------------------------------------------------------------
  timer.Reset();
  SegregationCube cube(encoded.catalog, encoded.unit_labels);
  UnitHistogrammer histogrammer(encoded.unit_labels.size());
  std::unordered_map<fpm::Itemset, ContextStats, fpm::ItemsetHash> contexts;
  std::vector<uint64_t> scratch_m(encoded.unit_labels.size(), 0);

  for (const fpm::FrequentItemset& fs : mined.value()) {
    fpm::Itemset sa, ca;
    encoded.catalog.Split(fs.items, &sa, &ca);
    if (sa.size() > options.max_sa_items) continue;
    if (ca.size() > options.max_ca_items) continue;

    // Context statistics (memoised by B).
    auto [ctx_it, inserted] = contexts.try_emplace(ca);
    ContextStats& ctx = ctx_it->second;
    if (inserted) {
      ctx.cover = encoded.db.Cover(ca);
      ctx.total = ctx.cover.Cardinality();
      ctx.unit_totals = histogrammer.Histogram(ctx.cover, encoded.row_unit);
    }

    // Minority cover: cover(A ∪ B) = cover(B) ∩ item covers of A.
    EwahBitmap minority_cover = ctx.cover;
    for (fpm::ItemId item : sa.items()) {
      minority_cover = minority_cover.And(encoded.db.ItemCover(item));
    }

    CubeCell cell;
    cell.coords = CellCoordinates{sa, ca};
    cell.context_size = ctx.total;
    cell.minority_size = minority_cover.Cardinality();
    cell.num_units = static_cast<uint32_t>(ctx.unit_totals.size());

    // Per-unit minority counts.
    std::vector<uint32_t> touched;
    minority_cover.ForEach([&](uint64_t row) {
      uint32_t unit = encoded.row_unit[row];
      if (scratch_m[unit] == 0) touched.push_back(unit);
      ++scratch_m[unit];
    });
    indexes::GroupDistribution dist;
    for (const auto& [unit, t] : ctx.unit_totals) {
      dist.AddUnit(t, scratch_m[unit]);
    }
    for (uint32_t unit : touched) scratch_m[unit] = 0;

    auto idx = indexes::ComputeAllIndexes(dist, options.index_params);
    if (!idx.ok()) return idx.status();
    cell.indexes = idx.value();

    if (cell.indexes.defined) ++st->cells_defined;
    ++st->cells_created;
    cube.Insert(std::move(cell));
  }
  st->seconds_filling = timer.Seconds();
  st->contexts_memoized = contexts.size();
  return cube;
}

Result<SegregationCube> BuildSegregationCube(
    const relational::Table& final_table, const CubeBuilderOptions& options,
    CubeBuildStats* stats) {
  WallTimer timer;
  auto encoded = relational::EncodeForAnalysis(final_table);
  if (!encoded.ok()) return encoded.status();
  double encode_secs = timer.Seconds();
  auto cube = BuildSegregationCube(encoded.value(), options, stats);
  if (cube.ok() && stats != nullptr) stats->seconds_encoding = encode_secs;
  return cube;
}

}  // namespace cube
}  // namespace scube
