// SegregationDataCubeBuilder (paper §2, algorithm of [4]).
//
// Segregation indexes are not additive, so the cube cannot be produced with
// ordinary group-by aggregation. The builder instead:
//   1. encodes the finalTable as a transaction database (one item per
//      attribute=value pair, SA and CA attributes);
//   2. mines frequent (closed) itemsets of the form A ∪ B where A are SA
//      items and B are CA items — one itemset per candidate cube cell;
//   3. for each mined itemset, derives per-unit counts
//         T   = |cover(B)|,        t_i = |cover(B) ∩ unit_i|,
//         M   = |cover(A ∪ B)|,    m_i = |cover(A ∪ B) ∩ unit_i|
//      bucketing EWAH covers through the row→unit array (O(|cover|)), with
//      context statistics memoised across the many cells that share B;
//   4. fills the cell with all six segregation indexes (undefined cells —
//      M = 0 or M = T — stay in the cube and render as "-", Fig. 1).

#ifndef SCUBE_CUBE_BUILDER_H_
#define SCUBE_CUBE_BUILDER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/trace.h"
#include "cube/cube.h"
#include "fpm/miner.h"
#include "relational/table.h"
#include "relational/transactions.h"

namespace scube {
namespace cube {

/// \brief Builder parameters.
struct CubeBuilderOptions {
  /// Absolute minimum support (individuals) for a cell to materialise.
  uint64_t min_support = 1;

  /// Alternative relative threshold; the effective minimum support is
  /// max(min_support, ceil(min_support_fraction * |rows|)).
  double min_support_fraction = 0.0;

  /// Coordinate-length caps: at most this many SA items / CA items per cell
  /// (multi-dimensional cubes explode combinatorially; the paper's scenarios
  /// use 3 SA and a handful of CA attributes).
  uint32_t max_sa_items = 3;
  uint32_t max_ca_items = 2;

  /// Mining engine ("fpgrowth", "eclat", "apriori", "brute-force").
  std::string miner = "fpgrowth";

  /// kClosed (the paper's choice): one cell per closed itemset.
  /// kAll: every frequent coordinate combination becomes a cell.
  fpm::MineMode mode = fpm::MineMode::kClosed;

  /// Worker threads for the cell-filling phase (mining stays sequential).
  /// 1 = sequential, 0 = all hardware threads, N = at most N threads from
  /// the shared pool. Output is identical for every setting: itemsets are
  /// grouped by context, each context is computed exactly once by exactly
  /// one worker, and group outputs merge in deterministic order.
  size_t num_threads = 1;

  /// Atkinson parameter etc.
  indexes::IndexParams index_params;

  /// Optional span sink (not owned). Phases record as "build.encode",
  /// "build.mine", "build.group" and "build.fill" — the same names
  /// bench_cube_builder and PublishAndWarm ("build.seal") report, so one
  /// trace shows the whole publish path. Null = no tracing.
  trace::TraceContext* trace = nullptr;
};

/// \brief Build statistics (reported by the demo's efficiency discussion).
/// All `seconds_*` timers are wall time of the phase, never summed worker
/// time — with num_threads > 1, seconds_filling is the elapsed time of the
/// whole parallel fill, so fill speedup = sequential / parallel directly.
struct CubeBuildStats {
  uint64_t mined_itemsets = 0;
  uint64_t cells_created = 0;
  uint64_t cells_defined = 0;
  uint64_t contexts_memoized = 0;
  uint32_t threads_used = 1;      ///< effective fill-phase parallelism
  double seconds_encoding = 0.0;
  double seconds_mining = 0.0;
  double seconds_grouping = 0.0;  ///< split/filter/group-by-context prepass
  double seconds_filling = 0.0;   ///< wall time of the (parallel) fill
};

/// Builds the cube from an already-encoded relation.
Result<SegregationCube> BuildSegregationCube(
    const relational::EncodedRelation& encoded,
    const CubeBuilderOptions& options, CubeBuildStats* stats = nullptr);

/// Convenience: encodes `final_table` (see EncodeForAnalysis) and builds.
Result<SegregationCube> BuildSegregationCube(
    const relational::Table& final_table, const CubeBuilderOptions& options,
    CubeBuildStats* stats = nullptr);

}  // namespace cube
}  // namespace scube

#endif  // SCUBE_CUBE_BUILDER_H_
