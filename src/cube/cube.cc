#include "cube/cube.h"

#include <algorithm>

#include "common/csv.h"
#include "common/string_util.h"
#include "cube/cube_view.h"

namespace scube {
namespace cube {

void SegregationCube::Insert(CubeCell cell) {
  CellCoordinates key = cell.coords;
  cells_[key] = std::move(cell);
}

const CubeCell* SegregationCube::Find(const CellCoordinates& coords) const {
  auto it = cells_.find(coords);
  return it == cells_.end() ? nullptr : &it->second;
}

const CubeCell* SegregationCube::Find(const fpm::Itemset& sa,
                                      const fpm::Itemset& ca) const {
  return Find(CellCoordinates{sa, ca});
}

size_t SegregationCube::NumDefinedCells() const {
  size_t count = 0;
  for (const auto& [coords, cell] : cells_) {
    if (cell.indexes.defined) ++count;
  }
  return count;
}

CubeView SegregationCube::Seal(size_t num_threads) const& {
  std::vector<CubeCell> cells;
  cells.reserve(cells_.size());
  for (const auto& [coords, cell] : cells_) cells.push_back(cell);
  return CubeView(catalog_, unit_labels_, std::move(cells), num_threads);
}

CubeView SegregationCube::Seal(size_t num_threads) && {
  std::vector<CubeCell> cells;
  cells.reserve(cells_.size());
  for (auto& [coords, cell] : cells_) cells.push_back(std::move(cell));
  cells_.clear();
  return CubeView(std::move(catalog_), std::move(unit_labels_),
                  std::move(cells), num_threads);
}

std::vector<const CubeCell*> SegregationCube::Cells() const {
  std::vector<const CubeCell*> out;
  out.reserve(cells_.size());
  for (const auto& [coords, cell] : cells_) out.push_back(&cell);
  std::sort(out.begin(), out.end(), [](const CubeCell* a, const CubeCell* b) {
    return a->coords < b->coords;
  });
  return out;
}

std::vector<const CubeCell*> SegregationCube::SliceBySa(
    const fpm::Itemset& sa) const {
  std::vector<const CubeCell*> out;
  for (const auto& [coords, cell] : cells_) {
    if (coords.sa == sa) out.push_back(&cell);
  }
  std::sort(out.begin(), out.end(), [](const CubeCell* a, const CubeCell* b) {
    return a->coords < b->coords;
  });
  return out;
}

std::vector<const CubeCell*> SegregationCube::SliceByCa(
    const fpm::Itemset& ca) const {
  std::vector<const CubeCell*> out;
  for (const auto& [coords, cell] : cells_) {
    if (coords.ca == ca) out.push_back(&cell);
  }
  std::sort(out.begin(), out.end(), [](const CubeCell* a, const CubeCell* b) {
    return a->coords < b->coords;
  });
  return out;
}

std::vector<const CubeCell*> SegregationCube::Parents(
    const CellCoordinates& coords) const {
  std::vector<const CubeCell*> out;
  for (fpm::ItemId item : coords.sa.items()) {
    fpm::Itemset reduced = coords.sa.Minus(fpm::Itemset({item}));
    if (const CubeCell* cell = Find(reduced, coords.ca)) out.push_back(cell);
  }
  for (fpm::ItemId item : coords.ca.items()) {
    fpm::Itemset reduced = coords.ca.Minus(fpm::Itemset({item}));
    if (const CubeCell* cell = Find(coords.sa, reduced)) out.push_back(cell);
  }
  return out;
}

std::vector<const CubeCell*> SegregationCube::Children(
    const CellCoordinates& coords) const {
  std::vector<const CubeCell*> out;
  for (const auto& [key, cell] : cells_) {
    bool sa_child = coords.sa.size() + 1 == key.sa.size() &&
                    coords.ca == key.ca && coords.sa.IsSubsetOf(key.sa);
    bool ca_child = coords.ca.size() + 1 == key.ca.size() &&
                    coords.sa == key.sa && coords.ca.IsSubsetOf(key.ca);
    if (sa_child || ca_child) out.push_back(&cell);
  }
  std::sort(out.begin(), out.end(), [](const CubeCell* a, const CubeCell* b) {
    return a->coords < b->coords;
  });
  return out;
}

std::string SegregationCube::LabelOf(const CellCoordinates& coords) const {
  return catalog_.LabelSet(coords.sa) + " | " + catalog_.LabelSet(coords.ca);
}

std::string SegregationCube::ToCsv() const {
  CsvWriter writer;
  std::vector<std::string> header{"sa", "ca", "T", "M", "units"};
  for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
    header.emplace_back(indexes::IndexKindToString(kind));
  }
  writer.WriteRow(header);
  for (const CubeCell* cell : Cells()) {
    std::vector<std::string> row{
        catalog_.LabelSet(cell->coords.sa),
        catalog_.LabelSet(cell->coords.ca),
        std::to_string(cell->context_size),
        std::to_string(cell->minority_size),
        std::to_string(cell->num_units),
    };
    for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
      row.push_back(cell->indexes.defined
                        ? FormatDouble(cell->indexes[kind], 6)
                        : "");
    }
    writer.WriteRow(row);
  }
  return writer.str();
}

}  // namespace cube
}  // namespace scube
