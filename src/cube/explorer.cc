#include "cube/explorer.h"

#include <algorithm>

namespace scube {
namespace cube {

bool PassesExplorerFilters(const CubeCell& cell,
                           const ExplorerOptions& options) {
  if (!cell.indexes.defined) return false;
  if (cell.context_size < options.min_context_size) return false;
  if (cell.minority_size < options.min_minority_size) return false;
  if (options.require_nonempty_sa && cell.coords.sa.empty()) return false;
  return true;
}

namespace {

// Screen for cells used as comparison baselines (roll-up parents, drill-down
// children): their index values are read, so they must carry a segregation
// reading themselves. Cube-builder cubes leave pure-context cells undefined
// (M = T), but hand-built cubes can Insert() a pure-context cell flagged
// defined — without the require_nonempty_sa guard such a cell would leak in
// as a baseline that TopSegregatedContexts correctly filters out.
bool UsableAsComparison(const CubeCell& cell, const ExplorerOptions& options) {
  if (!cell.indexes.defined) return false;
  if (options.require_nonempty_sa && cell.coords.sa.empty()) return false;
  return true;
}

}  // namespace

std::vector<RankedCell> TopSegregatedContexts(const CubeView& view,
                                              indexes::IndexKind kind,
                                              size_t k,
                                              const ExplorerOptions& options) {
  std::vector<RankedCell> ranked;
  if (k == 0) return ranked;
  // The ranked order is pre-sorted by (value desc, coordinate asc);
  // filtering preserves it, so the first k survivors are the answer.
  for (CubeView::CellId id : view.RankedByIndex(kind)) {
    const CubeCell& cell = view.cell(id);
    if (!PassesExplorerFilters(cell, options)) continue;
    ranked.push_back(RankedCell{&cell, cell.Value(kind)});
    if (ranked.size() == k) break;
  }
  return ranked;
}

std::optional<SurpriseFinding> EvaluateSurprise(
    const CubeView& view, CubeView::CellId id, indexes::IndexKind kind,
    double min_delta, const ExplorerOptions& options) {
  const CubeCell& cell = view.cell(id);
  if (!PassesExplorerFilters(cell, options)) return std::nullopt;
  if (cell.coords.sa.empty() && cell.coords.ca.empty()) return std::nullopt;
  double best_parent = 0.0;
  bool any_defined_parent = false;
  for (CubeView::CellId parent_id : view.Parents(id)) {
    const CubeCell& parent = view.cell(parent_id);
    if (!UsableAsComparison(parent, options)) continue;
    any_defined_parent = true;
    best_parent = std::max(best_parent, parent.Value(kind));
  }
  if (!any_defined_parent) return std::nullopt;
  double delta = cell.Value(kind) - best_parent;
  if (delta < min_delta) return std::nullopt;
  return SurpriseFinding{&cell, cell.Value(kind), best_parent, delta};
}

void SortSurprises(std::vector<SurpriseFinding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const SurpriseFinding& a, const SurpriseFinding& b) {
              if (a.delta != b.delta) return a.delta > b.delta;
              return a.cell->coords < b.cell->coords;
            });
}

std::vector<SurpriseFinding> DrillDownSurprises(
    const CubeView& view, indexes::IndexKind kind, double min_delta,
    const ExplorerOptions& options) {
  std::vector<SurpriseFinding> out;
  for (CubeView::CellId id = 0; id < view.NumCells(); ++id) {
    if (auto finding = EvaluateSurprise(view, id, kind, min_delta, options)) {
      out.push_back(*finding);
    }
  }
  SortSurprises(&out);
  return out;
}

std::optional<GranularityReversal> EvaluateReversal(
    const CubeView& view, CubeView::CellId id, indexes::IndexKind kind,
    double min_gap, const ExplorerOptions& options) {
  const CubeCell& parent = view.cell(id);
  if (!PassesExplorerFilters(parent, options)) return std::nullopt;
  // CA-children only: same subgroup, context refined by one item. The
  // adjacency list is coordinate-sorted, so the children keep that order.
  std::vector<const CubeCell*> children;
  for (CubeView::CellId child_id : view.Children(id)) {
    const CubeCell& child = view.cell(child_id);
    if (child.coords.sa == parent.coords.sa &&
        UsableAsComparison(child, options) &&
        child.context_size >= options.min_context_size &&
        child.minority_size >= options.min_minority_size) {
      children.push_back(&child);
    }
  }
  if (children.size() < 2) return std::nullopt;

  double parent_value = parent.Value(kind);
  bool all_above = true, all_below = true;
  double min_child = 1e300, max_child = -1e300;
  for (const CubeCell* child : children) {
    double v = child->Value(kind);
    min_child = std::min(min_child, v);
    max_child = std::max(max_child, v);
    if (v < parent_value + min_gap) all_above = false;
    if (v > parent_value - min_gap) all_below = false;
  }
  if (all_above) {
    return GranularityReversal{&parent, std::move(children), parent_value,
                               min_child, true};
  }
  if (all_below) {
    return GranularityReversal{&parent, std::move(children), parent_value,
                               max_child, false};
  }
  return std::nullopt;
}

void SortReversals(std::vector<GranularityReversal>* reversals) {
  std::sort(reversals->begin(), reversals->end(),
            [](const GranularityReversal& a, const GranularityReversal& b) {
              double ga = a.children_higher ? a.min_child_value - a.parent_value
                                            : a.parent_value - a.min_child_value;
              double gb = b.children_higher ? b.min_child_value - b.parent_value
                                            : b.parent_value - b.min_child_value;
              if (ga != gb) return ga > gb;
              return a.parent->coords < b.parent->coords;
            });
}

std::vector<GranularityReversal> FindGranularityReversals(
    const CubeView& view, indexes::IndexKind kind, double min_gap,
    const ExplorerOptions& options) {
  std::vector<GranularityReversal> out;
  for (CubeView::CellId id = 0; id < view.NumCells(); ++id) {
    if (auto reversal = EvaluateReversal(view, id, kind, min_gap, options)) {
      out.push_back(std::move(*reversal));
    }
  }
  SortReversals(&out);
  return out;
}

}  // namespace cube
}  // namespace scube
