#include "cube/explorer.h"

#include <algorithm>

namespace scube {
namespace cube {

bool PassesExplorerFilters(const CubeCell& cell,
                           const ExplorerOptions& options) {
  if (!cell.indexes.defined) return false;
  if (cell.context_size < options.min_context_size) return false;
  if (cell.minority_size < options.min_minority_size) return false;
  if (options.require_nonempty_sa && cell.coords.sa.empty()) return false;
  return true;
}

namespace {

bool PassesFilters(const CubeCell& cell, const ExplorerOptions& options) {
  return PassesExplorerFilters(cell, options);
}

// Screen for cells used as comparison baselines (roll-up parents, drill-down
// children): their index values are read, so they must carry a segregation
// reading themselves. Cube-builder cubes leave pure-context cells undefined
// (M = T), but hand-built cubes can Insert() a pure-context cell flagged
// defined — without the require_nonempty_sa guard such a cell would leak in
// as a baseline that TopSegregatedContexts correctly filters out.
bool UsableAsComparison(const CubeCell& cell, const ExplorerOptions& options) {
  if (!cell.indexes.defined) return false;
  if (options.require_nonempty_sa && cell.coords.sa.empty()) return false;
  return true;
}

}  // namespace

std::vector<RankedCell> TopSegregatedContexts(const SegregationCube& cube,
                                              indexes::IndexKind kind,
                                              size_t k,
                                              const ExplorerOptions& options) {
  std::vector<RankedCell> ranked;
  for (const CubeCell* cell : cube.Cells()) {
    if (!PassesFilters(*cell, options)) continue;
    ranked.push_back(RankedCell{cell, cell->Value(kind)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedCell& a, const RankedCell& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.cell->coords < b.cell->coords;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::vector<SurpriseFinding> DrillDownSurprises(
    const SegregationCube& cube, indexes::IndexKind kind, double min_delta,
    const ExplorerOptions& options) {
  std::vector<SurpriseFinding> out;
  for (const CubeCell* cell : cube.Cells()) {
    if (!PassesFilters(*cell, options)) continue;
    if (cell->coords.sa.empty() && cell->coords.ca.empty()) continue;
    auto parents = cube.Parents(cell->coords);
    double best_parent = 0.0;
    bool any_defined_parent = false;
    for (const CubeCell* parent : parents) {
      if (!UsableAsComparison(*parent, options)) continue;
      any_defined_parent = true;
      best_parent = std::max(best_parent, parent->Value(kind));
    }
    if (!any_defined_parent) continue;
    double delta = cell->Value(kind) - best_parent;
    if (delta >= min_delta) {
      out.push_back(SurpriseFinding{cell, cell->Value(kind), best_parent,
                                    delta});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SurpriseFinding& a, const SurpriseFinding& b) {
              if (a.delta != b.delta) return a.delta > b.delta;
              return a.cell->coords < b.cell->coords;
            });
  return out;
}

std::vector<GranularityReversal> FindGranularityReversals(
    const SegregationCube& cube, indexes::IndexKind kind, double min_gap,
    const ExplorerOptions& options) {
  std::vector<GranularityReversal> out;
  for (const CubeCell* parent : cube.Cells()) {
    if (!PassesFilters(*parent, options)) continue;
    // CA-children only: same subgroup, context refined by one item.
    std::vector<const CubeCell*> children;
    for (const CubeCell* child : cube.Children(parent->coords)) {
      if (child->coords.sa == parent->coords.sa &&
          UsableAsComparison(*child, options) &&
          child->context_size >= options.min_context_size &&
          child->minority_size >= options.min_minority_size) {
        children.push_back(child);
      }
    }
    if (children.size() < 2) continue;

    double parent_value = parent->Value(kind);
    bool all_above = true, all_below = true;
    double min_child = 1e300, max_child = -1e300;
    for (const CubeCell* child : children) {
      double v = child->Value(kind);
      min_child = std::min(min_child, v);
      max_child = std::max(max_child, v);
      if (v < parent_value + min_gap) all_above = false;
      if (v > parent_value - min_gap) all_below = false;
    }
    if (all_above) {
      out.push_back(GranularityReversal{parent, children, parent_value,
                                        min_child, true});
    } else if (all_below) {
      out.push_back(GranularityReversal{parent, children, parent_value,
                                        max_child, false});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const GranularityReversal& a, const GranularityReversal& b) {
              double ga = a.children_higher ? a.min_child_value - a.parent_value
                                            : a.parent_value - a.min_child_value;
              double gb = b.children_higher ? b.min_child_value - b.parent_value
                                            : b.parent_value - b.min_child_value;
              if (ga != gb) return ga > gb;
              return a.parent->coords < b.parent->coords;
            });
  return out;
}

}  // namespace cube
}  // namespace scube
