#include "cube/cube_view.h"

#include <algorithm>

#include "common/csv.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace scube {
namespace cube {

CubeView::CubeView(relational::ItemCatalog catalog,
                   std::vector<std::string> unit_labels,
                   std::vector<CubeCell> cells, size_t num_threads)
    : catalog_(std::move(catalog)),
      unit_labels_(std::move(unit_labels)),
      cells_(std::move(cells)) {
  std::sort(cells_.begin(), cells_.end(),
            [](const CubeCell& a, const CubeCell& b) {
              return a.coords < b.coords;
            });

  id_by_coords_.reserve(cells_.size());
  size_t max_item = 0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    const CubeCell& cell = cells_[i];
    id_by_coords_.emplace(cell.coords, static_cast<CellId>(i));
    if (cell.indexes.defined) ++num_defined_;
    for (fpm::ItemId item : cell.coords.sa.items()) {
      max_item = std::max<size_t>(max_item, item + 1);
    }
    for (fpm::ItemId item : cell.coords.ca.items()) {
      max_item = std::max<size_t>(max_item, item + 1);
    }
  }
  // Hand-built cubes may use item ids beyond the catalog; size the posting
  // universe to cover both.
  num_items_ = std::max(max_item, catalog_.size());

  std::vector<CellId> defined;
  defined.reserve(num_defined_);
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].indexes.defined) defined.push_back(static_cast<CellId>(i));
  }

  // From here every structure reads only the sorted cells_ / id map and
  // writes its own member, so the builds are independent tasks. Adjacency
  // (the heavy one: a hash probe per cell per coordinate item) additionally
  // parallelises its per-cell probes on the same pool.
  const size_t threads = ThreadPool::EffectiveThreads(num_threads);
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([this] { BuildPostings(true, &sa_postings_); });
  tasks.emplace_back([this] { BuildPostings(false, &ca_postings_); });
  tasks.emplace_back([this] { BuildSliceGroups(true, &sa_groups_); });
  tasks.emplace_back([this] { BuildSliceGroups(false, &ca_groups_); });
  tasks.emplace_back([this, threads] { BuildAdjacency(threads); });
  for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
    tasks.emplace_back(
        [this, kind, &defined] { BuildRankedOrder(kind, defined); });
  }
  // Sequential seals stay off the shared pool entirely (Shared() spawns
  // hardware_concurrency workers on first touch).
  if (threads <= 1) {
    for (const auto& task : tasks) task();
  } else {
    ThreadPool::Shared().ParallelFor(
        tasks.size(), threads,
        [&tasks](size_t /*worker*/, size_t t) { tasks[t](); });
  }
}

void CubeView::BuildPostings(bool sa_axis, Csr* csr) {
  csr->offsets.assign(num_items_ + 1, 0);
  for (const CubeCell& cell : cells_) {
    const fpm::Itemset& axis = sa_axis ? cell.coords.sa : cell.coords.ca;
    for (fpm::ItemId item : axis.items()) ++csr->offsets[item + 1];
  }
  for (size_t i = 1; i < csr->offsets.size(); ++i) {
    csr->offsets[i] += csr->offsets[i - 1];
  }
  csr->ids.resize(csr->offsets.back());
  std::vector<uint32_t> cursor(csr->offsets.begin(), csr->offsets.end() - 1);
  // Cells visited in id order, so every posting list comes out ascending.
  for (size_t i = 0; i < cells_.size(); ++i) {
    const fpm::Itemset& axis =
        sa_axis ? cells_[i].coords.sa : cells_[i].coords.ca;
    for (fpm::ItemId item : axis.items()) {
      csr->ids[cursor[item]++] = static_cast<CellId>(i);
    }
  }
}

void CubeView::BuildSliceGroups(bool sa_axis, SliceGroups* groups) {
  for (size_t i = 0; i < cells_.size(); ++i) {
    const fpm::Itemset& axis =
        sa_axis ? cells_[i].coords.sa : cells_[i].coords.ca;
    (*groups)[axis].push_back(static_cast<CellId>(i));
  }
}

void CubeView::BuildAdjacency(size_t num_threads) {
  // Parents of cell c: remove one item from SA (items ascending), then one
  // from CA; keep the coordinates present in the cube. The removal order is
  // part of the contract (ROLLUP row order), so it is preserved as built.
  // Each cell's probe is independent, writes only slot c, and reads the
  // frozen id map — so the probes fan out across the pool.
  std::vector<std::vector<CellId>> parents(cells_.size());
  auto probe = [&](size_t c) { parents[c] = ProbeParents(cells_[c].coords); };
  if (num_threads <= 1 || cells_.size() < 2) {
    for (size_t c = 0; c < cells_.size(); ++c) probe(c);
  } else {
    ThreadPool::Shared().ParallelFor(
        cells_.size(), num_threads,
        [&probe](size_t /*worker*/, size_t c) { probe(c); });
  }

  // Children are the parent relation transposed. `c` ascends, so every
  // children list comes out in ascending id order = coordinate order (the
  // order the mutable cube's Children() produced); no per-row sort needed.
  std::vector<std::vector<CellId>> children(cells_.size());
  for (size_t c = 0; c < cells_.size(); ++c) {
    for (CellId p : parents[c]) children[p].push_back(static_cast<CellId>(c));
  }

  auto flatten = [this](const std::vector<std::vector<CellId>>& rows,
                        Csr* csr) {
    csr->offsets.assign(cells_.size() + 1, 0);
    for (size_t i = 0; i < rows.size(); ++i) {
      csr->offsets[i + 1] =
          csr->offsets[i] + static_cast<uint32_t>(rows[i].size());
    }
    csr->ids.reserve(csr->offsets.back());
    for (const std::vector<CellId>& row : rows) {
      csr->ids.insert(csr->ids.end(), row.begin(), row.end());
    }
  };
  flatten(parents, &parents_);
  flatten(children, &children_);
}

void CubeView::BuildRankedOrder(indexes::IndexKind kind,
                                const std::vector<CellId>& defined) {
  std::vector<CellId>& order = ranked_[static_cast<size_t>(kind)];
  order = defined;
  std::sort(order.begin(), order.end(), [this, kind](CellId a, CellId b) {
    double va = cells_[a].Value(kind), vb = cells_[b].Value(kind);
    if (va != vb) return va > vb;
    return a < b;  // id order == coordinate order
  });
}

CubeView::CellId CubeView::FindId(const CellCoordinates& coords) const {
  auto it = id_by_coords_.find(coords);
  return it == id_by_coords_.end() ? kNoCell : it->second;
}

const CubeCell* CubeView::Find(const CellCoordinates& coords) const {
  CellId id = FindId(coords);
  return id == kNoCell ? nullptr : &cells_[id];
}

const CubeCell* CubeView::Find(const fpm::Itemset& sa,
                               const fpm::Itemset& ca) const {
  return Find(CellCoordinates{sa, ca});
}

std::span<const CubeView::CellId> CubeView::SaPostings(
    fpm::ItemId item) const {
  return item < num_items_ ? sa_postings_.row(item)
                           : std::span<const CellId>{};
}

std::span<const CubeView::CellId> CubeView::CaPostings(
    fpm::ItemId item) const {
  return item < num_items_ ? ca_postings_.row(item)
                           : std::span<const CellId>{};
}

std::span<const CubeView::CellId> CubeView::SliceBySa(
    const fpm::Itemset& sa) const {
  auto it = sa_groups_.find(sa);
  return it == sa_groups_.end() ? std::span<const CellId>{}
                                : std::span<const CellId>(it->second);
}

std::span<const CubeView::CellId> CubeView::SliceByCa(
    const fpm::Itemset& ca) const {
  auto it = ca_groups_.find(ca);
  return it == ca_groups_.end() ? std::span<const CellId>{}
                                : std::span<const CellId>(it->second);
}

std::span<const CubeView::CellId> CubeView::Parents(CellId id) const {
  return parents_.row(id);
}

std::span<const CubeView::CellId> CubeView::Children(CellId id) const {
  return children_.row(id);
}

std::vector<CubeView::CellId> CubeView::ProbeParents(
    const CellCoordinates& coords) const {
  std::vector<CellId> out;
  for (fpm::ItemId item : coords.sa.items()) {
    CellId p = FindId(
        CellCoordinates{coords.sa.Minus(fpm::Itemset({item})), coords.ca});
    if (p != kNoCell) out.push_back(p);
  }
  for (fpm::ItemId item : coords.ca.items()) {
    CellId p = FindId(
        CellCoordinates{coords.sa, coords.ca.Minus(fpm::Itemset({item}))});
    if (p != kNoCell) out.push_back(p);
  }
  return out;
}

std::vector<CubeView::CellId> CubeView::ParentsOf(
    const CellCoordinates& coords) const {
  CellId id = FindId(coords);
  if (id != kNoCell) {
    auto row = Parents(id);
    return std::vector<CellId>(row.begin(), row.end());
  }
  return ProbeParents(coords);
}

std::vector<CubeView::CellId> CubeView::ChildrenOf(
    const CellCoordinates& coords) const {
  CellId id = FindId(coords);
  if (id != kNoCell) {
    auto row = Children(id);
    return std::vector<CellId>(row.begin(), row.end());
  }
  // Probe every one-item extension; items beyond num_items_ appear in no
  // cell, so the probe set is complete.
  std::vector<CellId> out;
  for (size_t item = 0; item < num_items_; ++item) {
    fpm::ItemId id32 = static_cast<fpm::ItemId>(item);
    if (!coords.sa.Contains(id32)) {
      CellId c = FindId(CellCoordinates{coords.sa.With(id32), coords.ca});
      if (c != kNoCell) out.push_back(c);
    }
    if (!coords.ca.Contains(id32)) {
      CellId c = FindId(CellCoordinates{coords.sa, coords.ca.With(id32)});
      if (c != kNoCell) out.push_back(c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CubeView::CellId> CubeView::Dice(const fpm::Itemset& sa,
                                             const fpm::Itemset& ca,
                                             uint64_t* examined) const {
  std::vector<CellId> out;
  DiceVisit(sa, ca, examined, [&out](CellId id) {
    out.push_back(id);
    return true;
  });
  return out;
}


std::span<const CubeView::CellId> CubeView::RankedByIndex(
    indexes::IndexKind kind) const {
  return ranked_[static_cast<size_t>(kind)];
}

std::string CubeView::LabelOf(const CellCoordinates& coords) const {
  return catalog_.LabelSet(coords.sa) + " | " + catalog_.LabelSet(coords.ca);
}

std::string CubeView::ToCsv() const {
  CsvWriter writer;
  std::vector<std::string> header{"sa", "ca", "T", "M", "units"};
  for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
    header.emplace_back(indexes::IndexKindToString(kind));
  }
  writer.WriteRow(header);
  for (const CubeCell& cell : cells_) {
    std::vector<std::string> row{
        catalog_.LabelSet(cell.coords.sa),
        catalog_.LabelSet(cell.coords.ca),
        std::to_string(cell.context_size),
        std::to_string(cell.minority_size),
        std::to_string(cell.num_units),
    };
    for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
      row.push_back(cell.indexes.defined ? FormatDouble(cell.indexes[kind], 6)
                                         : "");
    }
    writer.WriteRow(row);
  }
  return writer.str();
}

}  // namespace cube
}  // namespace scube
