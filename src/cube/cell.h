// Cube cell: coordinates (SA itemset x CA itemset) and index payload.

#ifndef SCUBE_CUBE_CELL_H_
#define SCUBE_CUBE_CELL_H_

#include <cstdint>
#include <string>

#include "common/hashing.h"
#include "fpm/itemset.h"
#include "indexes/segregation_index.h"

namespace scube {
namespace cube {

/// \brief A cell address: the minority subgroup A (segregation items) and
/// the context B (context items). Empty itemsets denote "⋆".
struct CellCoordinates {
  fpm::Itemset sa;  ///< minority subgroup (e.g. sex=F & age=young)
  fpm::Itemset ca;  ///< context (e.g. region=north)

  bool operator==(const CellCoordinates& other) const {
    return sa == other.sa && ca == other.ca;
  }
  /// Deterministic ordering: by (|sa|+|ca|, sa, ca).
  bool operator<(const CellCoordinates& other) const;

  uint64_t Hash() const { return HashCombine(sa.Hash(), ca.Hash()); }
};

struct CellCoordinatesHash {
  size_t operator()(const CellCoordinates& c) const {
    return static_cast<size_t>(c.Hash());
  }
};

/// \brief One materialised cube cell.
struct CubeCell {
  CellCoordinates coords;

  /// T: population satisfying the CA coordinates.
  uint64_t context_size = 0;

  /// M: population satisfying both SA and CA coordinates.
  uint64_t minority_size = 0;

  /// Number of organisational units with population in this context.
  uint32_t num_units = 0;

  /// The six index values; `indexes.defined` is false for degenerate cells
  /// (M = 0 or M = T), rendered as "-" in reports (paper Fig. 1).
  indexes::IndexVector indexes;

  /// Convenience accessor; only meaningful when indexes.defined.
  double Value(indexes::IndexKind kind) const { return indexes[kind]; }

  /// Shard-replica marker (cluster/partition.h): a ghost is a copy of a
  /// cell owned by another shard, replicated so adjacency-based analytics
  /// (SURPRISES/REVERSALS) see their cross-shard comparison neighbours.
  /// Ghosts participate in every index and adjacency walk but are never
  /// emitted as query results — each global cell is emitted by exactly
  /// one shard. Always false outside sharded deployments.
  bool ghost = false;
};

}  // namespace cube
}  // namespace scube

#endif  // SCUBE_CUBE_CELL_H_
