#include "cube/cell.h"

namespace scube {
namespace cube {

bool CellCoordinates::operator<(const CellCoordinates& other) const {
  size_t len = sa.size() + ca.size();
  size_t other_len = other.sa.size() + other.ca.size();
  if (len != other_len) return len < other_len;
  if (!(sa == other.sa)) return sa < other.sa;
  return ca < other.ca;
}

}  // namespace cube
}  // namespace scube
