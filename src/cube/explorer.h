// Explorer: exploratory-analysis queries over a sealed cube — the
// "discovery" part of segregation discovery (top-k contexts, drill-down
// surprise, Simpson-style granularity reversals).
//
// All queries run against an immutable CubeView: top-k walks the view's
// precomputed ranked order, surprises and reversals walk its parent/child
// adjacency lists. The per-cell evaluators are exported so the SCubeQL
// executor can fold these analyses into its shared batch pass without
// drifting from the explorer's semantics.

#ifndef SCUBE_CUBE_EXPLORER_H_
#define SCUBE_CUBE_EXPLORER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cube/cube_view.h"

namespace scube {
namespace cube {

/// \brief Filters for exploration queries.
struct ExplorerOptions {
  /// Only cells whose context population T is at least this.
  uint64_t min_context_size = 30;

  /// Only cells whose minority population M is at least this.
  uint64_t min_minority_size = 5;

  /// Only cells with a non-⋆ minority subgroup (pure-context cells carry no
  /// segregation reading). Also screens the comparison cells — roll-up
  /// parents in DrillDownSurprises, drill-down children in
  /// FindGranularityReversals — so a hand-built cube with a defined
  /// pure-context cell cannot leak one in as a baseline.
  bool require_nonempty_sa = true;
};

/// True iff the cell carries a segregation reading under the filters:
/// defined indexes, the T/M floors, and (when required) a non-⋆ subgroup.
/// The per-cell screen every exploration query applies; exported so other
/// layers (e.g. the SCubeQL executor) cannot drift from it.
bool PassesExplorerFilters(const CubeCell& cell,
                           const ExplorerOptions& options);

/// \brief A ranked finding.
struct RankedCell {
  const CubeCell* cell = nullptr;
  double value = 0.0;
};

/// Top-k cells by the given index, descending, among defined cells passing
/// the filters. Walks the view's precomputed ranked order, so the cost is
/// O(k + cells filtered out before the k-th hit), not a fresh sort.
std::vector<RankedCell> TopSegregatedContexts(
    const CubeView& view, indexes::IndexKind kind, size_t k,
    const ExplorerOptions& options = ExplorerOptions());

/// \brief A drill-down surprise: a cell whose index deviates strongly from
/// every roll-up parent.
struct SurpriseFinding {
  const CubeCell* cell = nullptr;
  double value = 0.0;
  double best_parent_value = 0.0;  ///< max index among parents
  double delta = 0.0;              ///< value - best_parent_value
};

/// Evaluates one cell of the view as a surprise candidate: nullopt when the
/// cell fails the filters, is the root, has no usable parent, or sits
/// within `min_delta` of its best parent. The parent walk uses the view's
/// precomputed adjacency — no hashing.
std::optional<SurpriseFinding> EvaluateSurprise(const CubeView& view,
                                                CubeView::CellId id,
                                                indexes::IndexKind kind,
                                                double min_delta,
                                                const ExplorerOptions& options);

/// Sorts findings by delta descending (coordinate order on ties) — the
/// order DrillDownSurprises returns.
void SortSurprises(std::vector<SurpriseFinding>* findings);

/// Cells whose index exceeds all their parents by at least `min_delta`
/// (sorted by delta, descending). These are the contexts an analyst would
/// miss at coarser granularity.
std::vector<SurpriseFinding> DrillDownSurprises(
    const CubeView& view, indexes::IndexKind kind, double min_delta,
    const ExplorerOptions& options = ExplorerOptions());

/// \brief A Simpson-style granularity reversal: a parent cell that looks
/// integrated while every refinement of it along one attribute looks
/// segregated (or vice versa).
struct GranularityReversal {
  const CubeCell* parent = nullptr;
  std::vector<const CubeCell*> children;
  double parent_value = 0.0;
  double min_child_value = 0.0;
  bool children_higher = true;  ///< all children above parent (masking)
};

/// Evaluates one cell of the view as a reversal parent: nullopt when it
/// fails the filters, has fewer than two usable CA-children, or any child
/// sits within `min_gap` on the parent's side. Children come from the
/// view's adjacency lists.
std::optional<GranularityReversal> EvaluateReversal(
    const CubeView& view, CubeView::CellId id, indexes::IndexKind kind,
    double min_gap, const ExplorerOptions& options);

/// Sorts reversals by gap descending (coordinate order on ties) — the
/// order FindGranularityReversals returns.
void SortReversals(std::vector<GranularityReversal>* reversals);

/// Finds parents whose every child (>= 2 children, same SA, CA extended by
/// one item) sits on the other side of the parent by at least `min_gap`.
std::vector<GranularityReversal> FindGranularityReversals(
    const CubeView& view, indexes::IndexKind kind, double min_gap,
    const ExplorerOptions& options = ExplorerOptions());

}  // namespace cube
}  // namespace scube

#endif  // SCUBE_CUBE_EXPLORER_H_
