#include "scube/config.h"

#include "common/string_util.h"

namespace scube {
namespace pipeline {

namespace {

Status SetKey(PipelineConfig* config, const std::string& key,
              const std::string& value) {
  auto parse_double = [&](double* out) -> Status {
    auto v = ParseDouble(value);
    if (!v.ok()) return v.status().WithContext(key);
    *out = v.value();
    return Status::OK();
  };
  auto parse_u32 = [&](uint32_t* out) -> Status {
    auto v = ParseInt64(value);
    if (!v.ok()) return v.status().WithContext(key);
    if (v.value() < 0) return Status::InvalidArgument(key + " must be >= 0");
    *out = static_cast<uint32_t>(v.value());
    return Status::OK();
  };

  if (key == "unit_source") {
    if (value == "group-clusters") {
      config->unit_source = UnitSource::kGroupClusters;
    } else if (value == "group-attribute") {
      config->unit_source = UnitSource::kGroupAttribute;
    } else if (value == "individual-clusters") {
      config->unit_source = UnitSource::kIndividualClusters;
    } else {
      return Status::InvalidArgument("unknown unit_source: " + value);
    }
    return Status::OK();
  }
  if (key == "group_unit_attribute") {
    config->group_unit_attribute = value;
    return Status::OK();
  }
  if (key == "date") {
    auto v = ParseInt64(value);
    if (!v.ok()) return v.status().WithContext(key);
    config->date = v.value();
    return Status::OK();
  }
  if (key == "method") {
    if (value == "connected-components") {
      config->method = ClusterMethod::kConnectedComponents;
    } else if (value == "threshold-cc") {
      config->method = ClusterMethod::kThreshold;
    } else if (value == "stoc") {
      config->method = ClusterMethod::kStoc;
    } else if (value == "louvain") {
      config->method = ClusterMethod::kLouvain;
    } else {
      return Status::InvalidArgument("unknown method: " + value);
    }
    return Status::OK();
  }
  if (key == "threshold.min_weight") {
    return parse_double(&config->threshold.min_weight);
  }
  if (key == "threshold.giant_only") {
    if (value != "true" && value != "false") {
      return Status::InvalidArgument(key + " must be true or false");
    }
    config->threshold.giant_only = value == "true";
    return Status::OK();
  }
  if (key == "stoc.tau") return parse_double(&config->stoc.tau);
  if (key == "stoc.alpha") return parse_double(&config->stoc.alpha);
  if (key == "stoc.max_radius") return parse_u32(&config->stoc.max_radius);
  if (key == "projection.hub_cap") {
    return parse_u32(&config->projection.hub_cap);
  }
  if (key == "projection.min_weight") {
    return parse_double(&config->projection.min_weight);
  }
  if (key == "cube.min_support") {
    auto v = ParseInt64(value);
    if (!v.ok()) return v.status().WithContext(key);
    if (v.value() < 1) {
      return Status::InvalidArgument("cube.min_support must be >= 1");
    }
    config->cube.min_support = static_cast<uint64_t>(v.value());
    return Status::OK();
  }
  if (key == "cube.min_support_fraction") {
    return parse_double(&config->cube.min_support_fraction);
  }
  if (key == "cube.max_sa_items") {
    return parse_u32(&config->cube.max_sa_items);
  }
  if (key == "cube.max_ca_items") {
    return parse_u32(&config->cube.max_ca_items);
  }
  if (key == "cube.miner") {
    config->cube.miner = value;
    return Status::OK();
  }
  if (key == "cube.mode") {
    if (value == "all") {
      config->cube.mode = fpm::MineMode::kAll;
    } else if (value == "closed") {
      config->cube.mode = fpm::MineMode::kClosed;
    } else if (value == "maximal") {
      config->cube.mode = fpm::MineMode::kMaximal;
    } else {
      return Status::InvalidArgument("unknown cube.mode: " + value);
    }
    return Status::OK();
  }
  if (key == "cube.atkinson_b") {
    return parse_double(&config->cube.index_params.atkinson_b);
  }
  if (key == "cube.num_threads") {
    auto v = ParseInt64(value);
    if (!v.ok()) return v.status().WithContext(key);
    if (v.value() < 0) {
      return Status::InvalidArgument("cube.num_threads must be >= 0");
    }
    config->cube.num_threads = static_cast<size_t>(v.value());
    return Status::OK();
  }
  return Status::NotFound("unknown config key: " + key);
}

}  // namespace

Result<PipelineConfig> ParsePipelineConfig(const std::string& text) {
  PipelineConfig config;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected key = value");
    }
    std::string key(Trim(line.substr(0, eq)));
    std::string value(Trim(line.substr(eq + 1)));
    Status s = SetKey(&config, key, value);
    if (!s.ok()) {
      return s.WithContext("line " + std::to_string(line_no));
    }
  }
  return config;
}

std::string PipelineConfigToString(const PipelineConfig& config) {
  std::string out;
  out += "unit_source = " + std::string(UnitSourceToString(
                                config.unit_source)) + "\n";
  out += "group_unit_attribute = " + config.group_unit_attribute + "\n";
  out += "date = " + std::to_string(config.date) + "\n";
  out += "method = " + std::string(ClusterMethodToString(config.method)) +
         "\n";
  out += "threshold.min_weight = " +
         FormatDouble(config.threshold.min_weight, 3) + "\n";
  out += "threshold.giant_only = " +
         std::string(config.threshold.giant_only ? "true" : "false") + "\n";
  out += "stoc.tau = " + FormatDouble(config.stoc.tau, 3) + "\n";
  out += "stoc.alpha = " + FormatDouble(config.stoc.alpha, 3) + "\n";
  out += "stoc.max_radius = " + std::to_string(config.stoc.max_radius) + "\n";
  out += "projection.hub_cap = " +
         std::to_string(config.projection.hub_cap) + "\n";
  out += "projection.min_weight = " +
         FormatDouble(config.projection.min_weight, 3) + "\n";
  out += "cube.min_support = " + std::to_string(config.cube.min_support) +
         "\n";
  out += "cube.min_support_fraction = " +
         FormatDouble(config.cube.min_support_fraction, 6) + "\n";
  out += "cube.max_sa_items = " + std::to_string(config.cube.max_sa_items) +
         "\n";
  out += "cube.max_ca_items = " + std::to_string(config.cube.max_ca_items) +
         "\n";
  out += "cube.miner = " + config.cube.miner + "\n";
  out += "cube.mode = " +
         std::string(config.cube.mode == fpm::MineMode::kAll ? "all"
                     : config.cube.mode == fpm::MineMode::kClosed
                         ? "closed"
                         : "maximal") + "\n";
  out += "cube.atkinson_b = " +
         FormatDouble(config.cube.index_params.atkinson_b, 3) + "\n";
  out += "cube.num_threads = " + std::to_string(config.cube.num_threads) +
         "\n";
  return out;
}

}  // namespace pipeline
}  // namespace scube
