#include "scube/temporal.h"

namespace scube {
namespace pipeline {

namespace {

// Resolves a tracked coordinate against a run's catalog; false when any
// (attribute, value) pair has no item in this snapshot.
bool ResolveItems(
    const relational::ItemCatalog& catalog, const relational::Schema& schema,
    const std::vector<std::pair<std::string, std::string>>& pairs,
    fpm::Itemset* out) {
  std::vector<fpm::ItemId> items;
  for (const auto& [attr, value] : pairs) {
    int col = schema.IndexOf(attr);
    if (col < 0) return false;
    fpm::ItemId item = catalog.Find(static_cast<size_t>(col), value);
    if (item == fpm::kInvalidItem) return false;
    items.push_back(item);
  }
  *out = fpm::Itemset(std::move(items));
  return true;
}

}  // namespace

Result<TemporalResult> RunTemporalAnalysis(
    const etl::ScubeInputs& inputs, const PipelineConfig& config,
    const std::vector<graph::Date>& dates,
    const std::vector<TrackedCell>& tracked, const SnapshotSink& sink) {
  if (dates.empty()) {
    return Status::InvalidArgument("temporal analysis needs at least one "
                                   "snapshot date");
  }
  if (tracked.empty()) {
    return Status::InvalidArgument("no tracked cells given");
  }

  TemporalResult out;
  out.dates = dates;
  out.series.assign(tracked.size(), {});

  for (graph::Date date : dates) {
    PipelineConfig snapshot_config = config;
    snapshot_config.date = date;
    auto result = RunPipeline(inputs, snapshot_config);
    if (!result.ok()) {
      return result.status().WithContext("snapshot " + std::to_string(date));
    }
    // Tracked-cell extraction is a handful of point lookups per date, so
    // it reads the build-side cube directly; sealing (index construction)
    // happens downstream when the sink publishes a snapshot into a
    // CubeStore.
    const auto& cube = result->cube;
    const auto& schema = result->final_table.schema();

    for (size_t i = 0; i < tracked.size(); ++i) {
      TemporalPoint point;
      point.date = date;
      fpm::Itemset sa, ca;
      if (ResolveItems(cube.catalog(), schema, tracked[i].sa, &sa) &&
          ResolveItems(cube.catalog(), schema, tracked[i].ca, &ca)) {
        const cube::CubeCell* cell = cube.Find(sa, ca);
        if (cell != nullptr) {
          point.defined = cell->indexes.defined;
          point.context_size = cell->context_size;
          point.minority_size = cell->minority_size;
          point.indexes = cell->indexes;
        }
      }
      out.series[i].push_back(point);
    }

    if (sink) sink(date, std::move(*result));
  }
  return out;
}

}  // namespace pipeline
}  // namespace scube
