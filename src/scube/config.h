// PipelineConfig parsing from "key = value" text — the persistence format
// of the wizard's choices (and the knobs a production deployment would put
// in a config file).

#ifndef SCUBE_SCUBE_CONFIG_H_
#define SCUBE_SCUBE_CONFIG_H_

#include <string>

#include "common/result.h"
#include "scube/pipeline.h"

namespace scube {
namespace pipeline {

/// Parses a config document. Recognised keys (all optional; unknown keys
/// are errors, values are validated):
///
///   unit_source            group-clusters | group-attribute |
///                          individual-clusters
///   group_unit_attribute   <attribute name>
///   date                   <integer>
///   method                 connected-components | threshold-cc | stoc |
///                          louvain
///   threshold.min_weight   <double>
///   threshold.giant_only   true | false
///   stoc.tau               <double in [0,1]>
///   stoc.alpha             <double in [0,1]>
///   stoc.max_radius        <integer>
///   projection.hub_cap     <integer, 0 disables>
///   projection.min_weight  <double>
///   cube.min_support       <integer>
///   cube.min_support_fraction  <double>
///   cube.max_sa_items      <integer>
///   cube.max_ca_items      <integer>
///   cube.miner             fpgrowth | eclat | apriori | brute-force
///   cube.mode              all | closed | maximal
///   cube.atkinson_b        <double in (0,1)>
///   cube.num_threads       <integer, 1 = sequential, 0 = all hardware>
///
/// Lines starting with '#' and blank lines are ignored.
Result<PipelineConfig> ParsePipelineConfig(const std::string& text);

/// Serialises a config back to the parsable format.
std::string PipelineConfigToString(const PipelineConfig& config);

}  // namespace pipeline
}  // namespace scube

#endif  // SCUBE_SCUBE_CONFIG_H_
