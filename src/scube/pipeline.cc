#include "scube/pipeline.h"

#include <algorithm>

namespace scube {
namespace pipeline {

using relational::AttributeKind;
using relational::ColumnType;
using relational::Table;

const char* UnitSourceToString(UnitSource source) {
  switch (source) {
    case UnitSource::kGroupAttribute:
      return "group-attribute";
    case UnitSource::kIndividualClusters:
      return "individual-clusters";
    case UnitSource::kGroupClusters:
      return "group-clusters";
  }
  return "?";
}

const char* ClusterMethodToString(ClusterMethod method) {
  switch (method) {
    case ClusterMethod::kConnectedComponents:
      return "connected-components";
    case ClusterMethod::kThreshold:
      return "threshold-cc";
    case ClusterMethod::kStoc:
      return "stoc";
    case ClusterMethod::kLouvain:
      return "louvain";
  }
  return "?";
}

graph::NodeAttributes BuildNodeAttributes(const Table& table) {
  graph::NodeAttributes attrs(static_cast<uint32_t>(table.NumRows()));
  const relational::Schema& schema = table.schema();
  for (size_t r = 0; r < table.NumRows(); ++r) {
    std::vector<uint32_t> tokens;
    for (size_t a = 0; a < schema.NumAttributes(); ++a) {
      const auto& spec = schema.attribute(a);
      if (spec.kind != AttributeKind::kSegregation &&
          spec.kind != AttributeKind::kContext) {
        continue;
      }
      if (spec.type == ColumnType::kCategorical) {
        tokens.push_back(static_cast<uint32_t>(a) << 20 |
                         table.CategoricalCode(r, a));
      } else if (spec.type == ColumnType::kCategoricalSet) {
        for (relational::Code code : table.SetCodes(r, a)) {
          tokens.push_back(static_cast<uint32_t>(a) << 20 | code);
        }
      }
    }
    attrs.SetTokens(static_cast<graph::NodeId>(r), std::move(tokens));
  }
  return attrs;
}

namespace {

Result<graph::Clustering> RunClustering(const graph::Graph& projected,
                                        const graph::NodeAttributes& attrs,
                                        const PipelineConfig& config) {
  switch (config.method) {
    case ClusterMethod::kConnectedComponents:
      return graph::ConnectedComponents(projected);
    case ClusterMethod::kThreshold:
      return graph::ThresholdClustering(projected, config.threshold);
    case ClusterMethod::kStoc:
      return graph::StocClustering(projected, attrs, config.stoc);
    case ClusterMethod::kLouvain:
      return graph::LouvainClustering(projected, config.louvain);
  }
  return Status::Internal("unreachable cluster method");
}

// Scenario 2: finalTable = individual attributes + unitID from the
// individual's own community (one row per individual).
Result<Table> BuildIndividualFinalTable(const Table& individuals,
                                        const graph::Clustering& clustering) {
  relational::Schema out_schema;
  std::vector<size_t> cols;
  for (size_t a = 0; a < individuals.schema().NumAttributes(); ++a) {
    const auto& spec = individuals.schema().attribute(a);
    if (spec.kind == AttributeKind::kId) continue;
    SCUBE_RETURN_IF_ERROR(out_schema.AddAttribute(spec));
    cols.push_back(a);
  }
  SCUBE_RETURN_IF_ERROR(out_schema.AddAttribute(
      {"unitID", ColumnType::kCategorical, AttributeKind::kUnit}));

  Table out(out_schema);
  for (size_t r = 0; r < individuals.NumRows(); ++r) {
    std::vector<relational::CellValue> cells;
    for (size_t a : cols) {
      switch (individuals.schema().attribute(a).type) {
        case ColumnType::kCategorical:
          cells.emplace_back(individuals.CategoricalValue(r, a));
          break;
        case ColumnType::kInt64:
          cells.emplace_back(individuals.Int64Value(r, a));
          break;
        case ColumnType::kDouble:
          cells.emplace_back(individuals.DoubleValue(r, a));
          break;
        case ColumnType::kCategoricalSet:
          cells.emplace_back(individuals.SetValues(r, a));
          break;
      }
    }
    std::string unit_label = "c";
    unit_label += std::to_string(clustering.labels[r]);
    cells.emplace_back(std::move(unit_label));
    SCUBE_RETURN_IF_ERROR(out.AppendRow(cells));
  }
  return out;
}

}  // namespace

Result<PipelineResult> RunPipeline(const etl::ScubeInputs& inputs,
                                   const PipelineConfig& config) {
  SCUBE_RETURN_IF_ERROR(inputs.Validate());
  PipelineResult result;
  WallTimer stage;

  // --- Units ---------------------------------------------------------------
  if (config.unit_source == UnitSource::kGroupAttribute) {
    // Tabular scenario: the unit is a group attribute.
    int col = inputs.groups.schema().IndexOf(config.group_unit_attribute);
    if (col < 0) {
      return Status::NotFound("group attribute '" +
                              config.group_unit_attribute + "' not found");
    }
    if (inputs.groups.schema().attribute(static_cast<size_t>(col)).type !=
        ColumnType::kCategorical) {
      return Status::FailedPrecondition("group unit attribute must be "
                                        "categorical");
    }
    std::vector<uint32_t> raw(inputs.groups.NumRows());
    for (size_t r = 0; r < inputs.groups.NumRows(); ++r) {
      raw[r] = inputs.groups.CategoricalCode(r, static_cast<size_t>(col));
    }
    result.clustering = graph::NormalizeLabels(std::move(raw));
    result.timings.Record("unit-assignment", stage.Seconds());
  } else {
    // GraphBuilder.
    graph::ProjectionOptions proj = config.projection;
    proj.date = config.date;
    proj.side = config.unit_source == UnitSource::kIndividualClusters
                    ? graph::ProjectionSide::kIndividuals
                    : graph::ProjectionSide::kGroups;
    auto projection = graph::ProjectBipartite(inputs.membership, proj);
    if (!projection.ok()) return projection.status();
    result.projected_edges = projection->graph.NumEdges();
    result.isolated_nodes = projection->isolated.size();
    result.hubs_skipped = projection->hubs_skipped;
    result.timings.Record("graph-builder", stage.Seconds());
    stage.Reset();

    // GraphClustering.
    graph::NodeAttributes attrs;
    if (config.method == ClusterMethod::kStoc) {
      attrs = BuildNodeAttributes(
          config.unit_source == UnitSource::kIndividualClusters
              ? inputs.individuals
              : inputs.groups);
    }
    auto clustering = RunClustering(projection->graph, attrs, config);
    if (!clustering.ok()) return clustering.status();
    result.clustering = std::move(clustering).value();
    result.timings.Record("graph-clustering", stage.Seconds());
  }
  stage.Reset();

  // --- TableBuilder ---------------------------------------------------------
  if (config.unit_source == UnitSource::kIndividualClusters) {
    auto table = BuildIndividualFinalTable(inputs.individuals,
                                           result.clustering);
    if (!table.ok()) return table.status();
    result.final_table = std::move(table).value();
  } else {
    etl::TableBuilderOptions tb = config.table_builder;
    tb.date = config.date;
    auto table = etl::BuildFinalTable(inputs, result.clustering, tb);
    if (!table.ok()) return table.status();
    result.final_table = std::move(table).value();
  }
  result.timings.Record("table-builder", stage.Seconds());
  stage.Reset();

  // --- SegregationDataCubeBuilder -------------------------------------------
  auto cube = cube::BuildSegregationCube(result.final_table, config.cube,
                                         &result.cube_stats);
  if (!cube.ok()) return cube.status();
  result.cube = std::move(cube).value();
  result.timings.Record("cube-builder", stage.Seconds());
  return result;
}

}  // namespace pipeline
}  // namespace scube
