// ScubePipeline: the end-to-end process of Fig. 2/3 — GraphBuilder ->
// GraphClustering -> TableBuilder -> SegregationDataCubeBuilder — behind one
// configuration struct. The three demo scenarios (§4) map to the three
// UnitSource values.

#ifndef SCUBE_SCUBE_PIPELINE_H_
#define SCUBE_SCUBE_PIPELINE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/timer.h"
#include "cube/builder.h"
#include "cube/cube.h"
#include "etl/inputs.h"
#include "etl/table_builder.h"
#include "graph/connected_components.h"
#include "graph/louvain.h"
#include "graph/projection.h"
#include "graph/stoc.h"
#include "graph/threshold_clustering.h"

namespace scube {
namespace pipeline {

/// How organisational units are obtained.
enum class UnitSource {
  /// Scenario 1 (tabular): one group attribute (e.g. company sector) is the
  /// unit; no projection or clustering runs.
  kGroupAttribute,

  /// Scenario 2: project the bipartite graph onto *individuals* (directors
  /// connected by shared boards) and cluster them; a community of directors
  /// is the unit.
  kIndividualClusters,

  /// Scenario 3 (the paper's main flow): project onto *groups* (companies
  /// connected by shared directors), cluster companies; units are company
  /// communities.
  kGroupClusters,
};

/// Which GraphClustering method runs (paper §3 lists the first three).
enum class ClusterMethod {
  kConnectedComponents,
  kThreshold,  ///< weak-edge removal in the giant component, then CC ([4])
  kStoc,       ///< attributed clustering ([3])
  kLouvain,    ///< extension baseline
};

const char* UnitSourceToString(UnitSource source);
const char* ClusterMethodToString(ClusterMethod method);

/// \brief Full pipeline configuration.
struct PipelineConfig {
  UnitSource unit_source = UnitSource::kGroupClusters;

  /// Group attribute used when unit_source == kGroupAttribute.
  std::string group_unit_attribute = "sector";

  /// Snapshot date (temporal inputs); applied to projection and join.
  graph::Date date = 0;

  graph::ProjectionOptions projection;  // side is set from unit_source
  ClusterMethod method = ClusterMethod::kThreshold;
  graph::ThresholdClusteringOptions threshold;
  graph::StocOptions stoc;
  graph::LouvainOptions louvain;

  etl::TableBuilderOptions table_builder;
  cube::CubeBuilderOptions cube;
};

/// \brief Everything the run produced, plus stage timings.
struct PipelineResult {
  cube::SegregationCube cube;
  relational::Table final_table{relational::Schema{}};
  graph::Clustering clustering;
  uint64_t projected_edges = 0;
  uint64_t isolated_nodes = 0;
  uint64_t hubs_skipped = 0;
  cube::CubeBuildStats cube_stats;
  StageTimings timings;
};

/// Runs the configured pipeline on the inputs.
Result<PipelineResult> RunPipeline(const etl::ScubeInputs& inputs,
                                   const PipelineConfig& config);

/// Builds SToC node attributes from a table's categorical SA/CA columns
/// (token = attribute-qualified value code).
graph::NodeAttributes BuildNodeAttributes(const relational::Table& table);

}  // namespace pipeline
}  // namespace scube

#endif  // SCUBE_SCUBE_PIPELINE_H_
