// Temporal segregation analysis: runs the pipeline at each snapshot date
// (paper §3: the `dates` input) and assembles per-cell index time series.

#ifndef SCUBE_SCUBE_TEMPORAL_H_
#define SCUBE_SCUBE_TEMPORAL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "scube/pipeline.h"

namespace scube {
namespace pipeline {

/// \brief One snapshot's reading of one tracked cell.
struct TemporalPoint {
  graph::Date date = 0;
  bool defined = false;
  uint64_t context_size = 0;   ///< T at this date
  uint64_t minority_size = 0;  ///< M at this date
  indexes::IndexVector indexes;

  double MinorityShare() const {
    return context_size == 0
               ? 0.0
               : static_cast<double>(minority_size) /
                     static_cast<double>(context_size);
  }
};

/// \brief A tracked coordinate described by attribute/value pairs (labels
/// survive across snapshots even though item ids differ per run).
struct TrackedCell {
  /// SA coordinates as (attribute name, value), e.g. {{"gender","F"}}.
  std::vector<std::pair<std::string, std::string>> sa;
  /// CA coordinates, may be empty (the ⋆ context).
  std::vector<std::pair<std::string, std::string>> ca;
};

/// \brief Result of a temporal run: per tracked cell, one point per date.
struct TemporalResult {
  std::vector<graph::Date> dates;
  /// series[i][j] = tracked cell i at dates[j].
  std::vector<std::vector<TemporalPoint>> series;
};

/// Receives each date's finished pipeline run after tracked-cell
/// extraction — the publishing hook: the query layer's
/// `RunTemporalAnalysisPublished` seals each run's cube into a
/// `CubeStore` so SCubeQL (and HTTP clients) can address the snapshots
/// as `FROM name@version`. The result is moved in; the sink owns it.
using SnapshotSink = std::function<void(graph::Date, PipelineResult&&)>;

/// Runs the pipeline once per date and extracts the tracked cells. Dates
/// must be non-empty; tracked cells whose items are absent at a date yield
/// an undefined point (defined = false). When `sink` is non-null it is
/// called once per date, in date order, with that snapshot's pipeline
/// result.
Result<TemporalResult> RunTemporalAnalysis(
    const etl::ScubeInputs& inputs, const PipelineConfig& config,
    const std::vector<graph::Date>& dates,
    const std::vector<TrackedCell>& tracked,
    const SnapshotSink& sink = nullptr);

}  // namespace pipeline
}  // namespace scube

#endif  // SCUBE_SCUBE_TEMPORAL_H_
