// TableBuilder (paper §3): joins individual features with the features of
// the groups in an organisational unit, yielding the finalTable — one row
// per (individual, organisational unit) pair.
//
// Group CA attributes are unioned into set-valued attributes: a director
// whose unit contains an electricity company and a transport company gets
// sector = {electricity, transports}, exactly the finalTable of Fig. 3.

#ifndef SCUBE_ETL_TABLE_BUILDER_H_
#define SCUBE_ETL_TABLE_BUILDER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "etl/inputs.h"
#include "graph/clustering.h"

namespace scube {
namespace etl {

/// \brief TableBuilder parameters.
struct TableBuilderOptions {
  /// Snapshot date: only memberships active at this date join.
  graph::Date date = 0;

  /// When true, group CA values are unioned over the individual's groups
  /// *within the unit* (set-valued columns). When false, group attributes
  /// are dropped and only individual attributes survive.
  bool include_group_attributes = true;
};

/// Builds the finalTable.
///
/// `group_unit` assigns every group (row of inputs.groups) to an
/// organisational unit — typically the output of GraphClustering over the
/// projected company graph. The finalTable schema is: the individuals'
/// non-id attributes (kinds preserved), each group CA attribute as a
/// kCategoricalSet context attribute, and a trailing categorical `unitID`.
Result<relational::Table> BuildFinalTable(const ScubeInputs& inputs,
                                          const graph::Clustering& group_unit,
                                          const TableBuilderOptions& options);

}  // namespace etl
}  // namespace scube

#endif  // SCUBE_ETL_TABLE_BUILDER_H_
