// CSV loaders for the SCube inputs (individual.csv, group.csv,
// individualGroup.csv — paper Fig. 3).

#ifndef SCUBE_ETL_LOADERS_H_
#define SCUBE_ETL_LOADERS_H_

#include <string>

#include "common/csv.h"
#include "common/result.h"
#include "etl/inputs.h"

namespace scube {
namespace etl {

/// \brief Column naming for the membership CSV.
struct MembershipCsvFormat {
  std::string individual_column = "individualID";
  std::string group_column = "groupID";
  /// Optional validity columns; when absent, edges are valid forever.
  std::string valid_from_column = "from";
  std::string valid_to_column = "to";
};

/// Loads the three CSV documents into ScubeInputs. The id attribute of each
/// entity table (kind kId, int64) keys the membership references; unknown
/// ids in the membership file are an error.
Result<ScubeInputs> LoadInputsFromCsv(
    const CsvDocument& individuals_doc, const relational::Schema& ind_schema,
    const CsvDocument& groups_doc, const relational::Schema& grp_schema,
    const CsvDocument& membership_doc,
    const MembershipCsvFormat& format = MembershipCsvFormat());

}  // namespace etl
}  // namespace scube

#endif  // SCUBE_ETL_LOADERS_H_
