#include "etl/table_builder.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace scube {
namespace etl {

using relational::AttributeKind;
using relational::AttributeSpec;
using relational::CellValue;
using relational::ColumnType;
using relational::Schema;
using relational::Table;

Result<Table> BuildFinalTable(const ScubeInputs& inputs,
                              const graph::Clustering& group_unit,
                              const TableBuilderOptions& options) {
  SCUBE_RETURN_IF_ERROR(inputs.Validate());
  if (group_unit.NumNodes() != inputs.groups.NumRows()) {
    return Status::InvalidArgument(
        "clustering covers " + std::to_string(group_unit.NumNodes()) +
        " groups, table has " + std::to_string(inputs.groups.NumRows()));
  }

  const Schema& ind_schema = inputs.individuals.schema();
  const Schema& grp_schema = inputs.groups.schema();

  // Output schema: individual non-id attributes, group CA attributes as
  // sets, then unitID.
  Schema out_schema;
  std::vector<size_t> ind_cols;
  for (size_t a = 0; a < ind_schema.NumAttributes(); ++a) {
    const AttributeSpec& spec = ind_schema.attribute(a);
    if (spec.kind == AttributeKind::kId) continue;
    SCUBE_RETURN_IF_ERROR(out_schema.AddAttribute(spec));
    ind_cols.push_back(a);
  }
  std::vector<size_t> grp_cols;
  if (options.include_group_attributes) {
    for (size_t a = 0; a < grp_schema.NumAttributes(); ++a) {
      const AttributeSpec& spec = grp_schema.attribute(a);
      if (spec.kind != AttributeKind::kContext) continue;
      if (spec.type != ColumnType::kCategorical &&
          spec.type != ColumnType::kCategoricalSet) {
        return Status::FailedPrecondition(
            "group attribute '" + spec.name +
            "' is numeric; bin it before joining");
      }
      AttributeSpec set_spec = spec;
      set_spec.type = ColumnType::kCategoricalSet;
      SCUBE_RETURN_IF_ERROR(out_schema.AddAttribute(set_spec));
      grp_cols.push_back(a);
    }
  }
  SCUBE_RETURN_IF_ERROR(out_schema.AddAttribute(
      {"unitID", ColumnType::kCategorical, AttributeKind::kUnit}));

  // (individual, unit) -> set of group rows, insertion-ordered by key for
  // deterministic output.
  std::map<std::pair<uint32_t, uint32_t>, std::set<uint32_t>> pairs;
  for (const graph::Membership& m : inputs.membership.memberships()) {
    if (!m.ActiveAt(options.date)) continue;
    uint32_t unit = group_unit.labels[m.group];
    pairs[{m.individual, unit}].insert(m.group);
  }

  Table out(out_schema);
  for (const auto& [key, group_rows] : pairs) {
    auto [individual, unit] = key;
    std::vector<CellValue> cells;
    cells.reserve(out_schema.NumAttributes());
    for (size_t a : ind_cols) {
      switch (ind_schema.attribute(a).type) {
        case ColumnType::kCategorical:
          cells.emplace_back(inputs.individuals.CategoricalValue(individual, a));
          break;
        case ColumnType::kInt64:
          cells.emplace_back(inputs.individuals.Int64Value(individual, a));
          break;
        case ColumnType::kDouble:
          cells.emplace_back(inputs.individuals.DoubleValue(individual, a));
          break;
        case ColumnType::kCategoricalSet:
          cells.emplace_back(inputs.individuals.SetValues(individual, a));
          break;
      }
    }
    for (size_t a : grp_cols) {
      std::set<std::string> values;
      for (uint32_t g : group_rows) {
        if (grp_schema.attribute(a).type == ColumnType::kCategorical) {
          values.insert(inputs.groups.CategoricalValue(g, a));
        } else {
          for (const std::string& v : inputs.groups.SetValues(g, a)) {
            values.insert(v);
          }
        }
      }
      cells.emplace_back(
          std::vector<std::string>(values.begin(), values.end()));
    }
    std::string unit_label = "c";
    unit_label += std::to_string(unit);
    cells.emplace_back(std::move(unit_label));
    SCUBE_RETURN_IF_ERROR(out.AppendRow(cells));
  }
  return out;
}

}  // namespace etl
}  // namespace scube
