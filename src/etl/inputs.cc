#include "etl/inputs.h"

namespace scube {
namespace etl {

Status ScubeInputs::Validate() const {
  if (membership.NumIndividuals() != individuals.NumRows()) {
    return Status::FailedPrecondition(
        "membership expects " + std::to_string(membership.NumIndividuals()) +
        " individuals, table has " + std::to_string(individuals.NumRows()));
  }
  if (membership.NumGroups() != groups.NumRows()) {
    return Status::FailedPrecondition(
        "membership expects " + std::to_string(membership.NumGroups()) +
        " groups, table has " + std::to_string(groups.NumRows()));
  }
  using relational::AttributeKind;
  if (!groups.schema().IndicesOfKind(AttributeKind::kSegregation).empty()) {
    return Status::FailedPrecondition(
        "groups must not carry segregation attributes (paper §3: groups "
        "are contexts, not subjects)");
  }
  return Status::OK();
}

}  // namespace etl
}  // namespace scube
