// ScubeInputs: the four inputs of the SCube process (paper Fig. 2/3):
// individuals, groups, membership (with optional validity intervals), and
// snapshot dates.

#ifndef SCUBE_ETL_INPUTS_H_
#define SCUBE_ETL_INPUTS_H_

#include <vector>

#include "graph/bipartite.h"
#include "relational/table.h"

namespace scube {
namespace etl {

/// \brief The bundle of SCube inputs.
///
/// `individuals` carries one row per person: an id attribute plus SA and CA
/// attributes. `groups` carries one row per organisation: an id attribute
/// plus CA attributes only (groups are contexts, not subjects — paper §3).
/// `membership` links *row indices* of the two tables (loaders translate
/// external ids). `snapshot_dates` selects the temporal snapshots analysed.
struct ScubeInputs {
  relational::Table individuals;
  relational::Table groups;
  graph::BipartiteGraph membership;
  std::vector<graph::Date> snapshot_dates;

  ScubeInputs()
      : individuals(relational::Schema{}),
        groups(relational::Schema{}),
        membership(0, 0) {}

  ScubeInputs(relational::Table individuals_in, relational::Table groups_in,
              graph::BipartiteGraph membership_in)
      : individuals(std::move(individuals_in)),
        groups(std::move(groups_in)),
        membership(std::move(membership_in)) {}

  /// Sanity checks: membership endpoints within table sizes; the groups
  /// table has no segregation attributes.
  Status Validate() const;
};

}  // namespace etl
}  // namespace scube

#endif  // SCUBE_ETL_INPUTS_H_
