#include "etl/loaders.h"

#include <unordered_map>

#include "common/string_util.h"

namespace scube {
namespace etl {

namespace {

using relational::AttributeKind;
using relational::Table;

// Builds external-id -> row-index map from the table's kId column.
Result<std::unordered_map<int64_t, uint32_t>> IdIndex(const Table& table) {
  auto id_cols = table.schema().IndicesOfKind(AttributeKind::kId);
  if (id_cols.size() != 1) {
    return Status::FailedPrecondition("entity table needs exactly one id "
                                      "attribute");
  }
  if (table.schema().attribute(id_cols[0]).type !=
      relational::ColumnType::kInt64) {
    return Status::FailedPrecondition("id attribute must be int64");
  }
  std::unordered_map<int64_t, uint32_t> index;
  index.reserve(table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    int64_t id = table.Int64Value(r, id_cols[0]);
    auto [it, inserted] = index.emplace(id, static_cast<uint32_t>(r));
    if (!inserted) {
      return Status::InvalidArgument("duplicate entity id " +
                                     std::to_string(id));
    }
  }
  return index;
}

}  // namespace

Result<ScubeInputs> LoadInputsFromCsv(const CsvDocument& individuals_doc,
                                      const relational::Schema& ind_schema,
                                      const CsvDocument& groups_doc,
                                      const relational::Schema& grp_schema,
                                      const CsvDocument& membership_doc,
                                      const MembershipCsvFormat& format) {
  auto individuals = Table::FromCsv(individuals_doc, ind_schema);
  if (!individuals.ok()) {
    return individuals.status().WithContext("individuals");
  }
  auto groups = Table::FromCsv(groups_doc, grp_schema);
  if (!groups.ok()) return groups.status().WithContext("groups");

  auto ind_index = IdIndex(individuals.value());
  if (!ind_index.ok()) return ind_index.status().WithContext("individuals");
  auto grp_index = IdIndex(groups.value());
  if (!grp_index.ok()) return grp_index.status().WithContext("groups");

  int ind_col = membership_doc.ColumnIndex(format.individual_column);
  int grp_col = membership_doc.ColumnIndex(format.group_column);
  if (ind_col < 0 || grp_col < 0) {
    return Status::NotFound("membership CSV must have columns '" +
                            format.individual_column + "' and '" +
                            format.group_column + "'");
  }
  int from_col = membership_doc.ColumnIndex(format.valid_from_column);
  int to_col = membership_doc.ColumnIndex(format.valid_to_column);

  graph::BipartiteGraph membership(
      static_cast<uint32_t>(individuals->NumRows()),
      static_cast<uint32_t>(groups->NumRows()));
  for (size_t r = 0; r < membership_doc.rows.size(); ++r) {
    const auto& row = membership_doc.rows[r];
    auto ind_id = ParseInt64(row[static_cast<size_t>(ind_col)]);
    auto grp_id = ParseInt64(row[static_cast<size_t>(grp_col)]);
    if (!ind_id.ok()) {
      return ind_id.status().WithContext("membership row " +
                                         std::to_string(r));
    }
    if (!grp_id.ok()) {
      return grp_id.status().WithContext("membership row " +
                                         std::to_string(r));
    }
    auto ind_it = ind_index->find(ind_id.value());
    if (ind_it == ind_index->end()) {
      return Status::NotFound("membership row " + std::to_string(r) +
                              " references unknown individual " +
                              std::to_string(ind_id.value()));
    }
    auto grp_it = grp_index->find(grp_id.value());
    if (grp_it == grp_index->end()) {
      return Status::NotFound("membership row " + std::to_string(r) +
                              " references unknown group " +
                              std::to_string(grp_id.value()));
    }
    graph::Date from = graph::kDateMin;
    graph::Date to = graph::kDateMax;
    if (from_col >= 0 && !row[static_cast<size_t>(from_col)].empty()) {
      auto v = ParseInt64(row[static_cast<size_t>(from_col)]);
      if (!v.ok()) return v.status().WithContext("membership 'from'");
      from = v.value();
    }
    if (to_col >= 0 && !row[static_cast<size_t>(to_col)].empty()) {
      auto v = ParseInt64(row[static_cast<size_t>(to_col)]);
      if (!v.ok()) return v.status().WithContext("membership 'to'");
      to = v.value();
    }
    Status s = membership.AddMembership(ind_it->second, grp_it->second, from,
                                        to);
    if (!s.ok()) return s.WithContext("membership row " + std::to_string(r));
  }

  ScubeInputs inputs(std::move(individuals).value(), std::move(groups).value(),
                     std::move(membership));
  SCUBE_RETURN_IF_ERROR(inputs.Validate());
  return inputs;
}

}  // namespace etl
}  // namespace scube
