// EFF-CUBE: SegregationDataCubeBuilder cost and build parallelism.
//
// Cube construction is the dominant cost of segregation discovery
// (paper §4): frequent-itemset mining plus one EWAH-bucketing pass per
// candidate cell, then Seal()'s index construction at publish time. The
// fill and seal phases decompose into independent units (one context per
// worker, one index structure per task), so this bench sweeps thread
// counts over the standard synthetic workload and reports per-phase wall
// times and speedups, verifying along the way that every thread count
// produces the identical cube.
//
// Run:  ./bench_cube_builder [--quick] [--threads 1,2,4] [--scale S]
//                            [--min-support N] [--reps R] [--no-json]
//
//   --quick          small workload, single rep (the CI smoke mode)
//   --threads LIST   comma-separated thread counts (default 1,2,4)
//   --scale S        synthetic scenario scale (default 0.004)
//   --min-support N  builder minimum support (default 20)
//   --reps R         repetitions per configuration, best-of (default 3)
//   --no-json        skip writing BENCH_cube_build.json
//
// Emits a BENCH_cube_build.json scaling record in the working directory:
// thread counts, per-phase best wall seconds, and speedups vs the
// sequential run.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "cube/builder.h"
#include "cube/cube_view.h"
#include "datagen/scenarios.h"
#include "scube/pipeline.h"

namespace {

using namespace scube;

relational::Table MakeFinalTable(double scale) {
  auto s = datagen::GenerateScenario(datagen::ItalianConfig(scale));
  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupAttribute;
  config.group_unit_attribute = "sector";
  config.cube.min_support = 1 << 30;  // cube content irrelevant here
  auto r = pipeline::RunPipeline(s->inputs, config);
  if (!r.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r->final_table;
}

struct PhaseTimes {
  double mining = 0;
  double fill = 0;
  double seal = 0;
  double combined() const { return fill + seal; }
};

std::vector<size_t> ParseThreadList(const char* arg) {
  std::vector<size_t> out;
  for (const std::string& token : Split(arg, ',')) {
    size_t t = static_cast<size_t>(std::strtoul(token.c_str(), nullptr, 10));
    if (t == 0) {
      std::fprintf(stderr, "--threads entries must be >= 1\n");
      std::exit(1);
    }
    out.push_back(t);
  }
  if (out.empty()) out = {1, 2, 4};
  // Speedups (and the determinism reference) are defined against the
  // sequential run, so one always leads the sweep.
  if (out.front() != 1) out.insert(out.begin(), 1);
  return out;
}

std::string JoinDoubles(const std::vector<double>& values) {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6f", values[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  return out;
}

std::string JoinSizes(const std::vector<size_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values[i]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool write_json = true;
  double scale = 0.004;
  uint64_t min_support = 20;
  int reps = 3;
  std::vector<size_t> thread_counts = {1, 2, 4};

  auto next = [&](int* i, const char* flag) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", flag);
      std::exit(1);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      thread_counts = ParseThreadList(next(&i, "--threads"));
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      scale = std::atof(next(&i, "--scale"));
    } else if (std::strcmp(argv[i], "--min-support") == 0) {
      min_support = std::strtoull(next(&i, "--min-support"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::atoi(next(&i, "--reps"));
    } else if (std::strcmp(argv[i], "--no-json") == 0) {
      write_json = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  if (quick) {
    scale = std::min(scale, 0.002);
    reps = 1;
  }
  if (reps < 1) reps = 1;

  std::printf("Generating the standard synthetic workload (scale %.4f)...\n",
              scale);
  relational::Table table = MakeFinalTable(scale);
  auto encoded = relational::EncodeForAnalysis(table);
  if (!encoded.ok()) {
    std::fprintf(stderr, "encode failed: %s\n",
                 encoded.status().ToString().c_str());
    return 1;
  }
  std::printf("  rows=%zu\n", table.NumRows());

  cube::CubeBuilderOptions opts;
  opts.min_support = min_support;
  opts.mode = fpm::MineMode::kAll;
  opts.max_sa_items = 2;
  opts.max_ca_items = 2;

  // Per thread count: best-of-`reps` build + seal, plus a determinism
  // check of the cube against the sequential reference.
  std::vector<PhaseTimes> best(thread_counts.size());
  size_t cells = 0;
  std::string reference_csv;
  // The sequential first rep doubles as the phase-trace sample: the same
  // build.mine/build.group/build.fill/build.seal span names scubed's
  // PublishAndWarm logs, so bench and server numbers line up by name.
  trace::TraceContext phase_trace;
  for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
    size_t threads = thread_counts[ti];
    opts.num_threads = threads;
    PhaseTimes bt;
    for (int rep = 0; rep < reps; ++rep) {
      opts.trace = (ti == 0 && rep == 0) ? &phase_trace : nullptr;
      cube::CubeBuildStats stats;
      auto built = cube::BuildSegregationCube(*encoded, opts, &stats);
      if (!built.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     built.status().ToString().c_str());
        return 1;
      }
      cells = built->NumCells();
      if (rep == 0) {
        std::string csv = built->ToCsv();
        if (ti == 0) {
          reference_csv = std::move(csv);
        } else if (csv != reference_csv) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: %zu-thread cube differs "
                       "from the %zu-thread reference\n",
                       threads, thread_counts[0]);
          return 1;
        }
      }
      WallTimer seal_timer;
      trace::Span seal_span(opts.trace, "build.seal");
      cube::CubeView view = std::move(*built).Seal(threads);
      seal_span.End();
      double seal_secs = seal_timer.Seconds();
      if (view.NumCells() != cells) {
        std::fprintf(stderr, "seal lost cells\n");
        return 1;
      }
      if (rep == 0 || stats.seconds_filling < bt.fill) {
        bt.fill = stats.seconds_filling;
      }
      if (rep == 0 || seal_secs < bt.seal) bt.seal = seal_secs;
      if (rep == 0 || stats.seconds_mining < bt.mining) {
        bt.mining = stats.seconds_mining;
      }
    }
    best[ti] = bt;
  }

  const PhaseTimes& base = best[0];
  std::printf("\ncube: %zu cells, min_support=%llu, mode=all "
              "(mining stays sequential: %.1f ms)\n",
              cells, static_cast<unsigned long long>(min_support),
              base.mining * 1e3);
  std::printf("%8s %12s %12s %14s %10s %10s %10s\n", "threads", "fill(ms)",
              "seal(ms)", "fill+seal(ms)", "fill(x)", "seal(x)", "both(x)");
  std::vector<double> fill_s, seal_s, fill_x, seal_x, both_x;
  for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
    const PhaseTimes& bt = best[ti];
    double fx = bt.fill > 0 ? base.fill / bt.fill : 1.0;
    double sx = bt.seal > 0 ? base.seal / bt.seal : 1.0;
    double cx = bt.combined() > 0 ? base.combined() / bt.combined() : 1.0;
    std::printf("%8zu %12.2f %12.2f %14.2f %9.2fx %9.2fx %9.2fx\n",
                thread_counts[ti], bt.fill * 1e3, bt.seal * 1e3,
                bt.combined() * 1e3, fx, sx, cx);
    fill_s.push_back(bt.fill);
    seal_s.push_back(bt.seal);
    fill_x.push_back(fx);
    seal_x.push_back(sx);
    both_x.push_back(cx);
  }
  std::printf("\ndeterminism: all thread counts produced the identical "
              "cube (%zu cells)\n", cells);
  std::printf("phase trace (sequential rep): %s\n",
              phase_trace.Summary().c_str());

  if (write_json) {
    std::ofstream out("BENCH_cube_build.json");
    out << "{\n"
        << "  \"bench\": \"cube_build\",\n"
        << "  \"workload\": {\"scale\": " << scale
        << ", \"rows\": " << table.NumRows() << ", \"cells\": " << cells
        << ", \"min_support\": " << min_support << ", \"mode\": \"all\"},\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"threads\": [" << JoinSizes(thread_counts) << "],\n"
        << "  \"mining_seconds\": " << base.mining << ",\n"
        << "  \"fill_seconds\": [" << JoinDoubles(fill_s) << "],\n"
        << "  \"seal_seconds\": [" << JoinDoubles(seal_s) << "],\n"
        << "  \"fill_speedup\": [" << JoinDoubles(fill_x) << "],\n"
        << "  \"seal_speedup\": [" << JoinDoubles(seal_x) << "],\n"
        << "  \"combined_speedup\": [" << JoinDoubles(both_x) << "],\n"
        << "  \"deterministic\": true\n"
        << "}\n";
    std::printf("wrote BENCH_cube_build.json\n");
  }
  return 0;
}
