// EFF-CUBE: SegregationDataCubeBuilder cost. Because segregation indexes
// are not additive (paper §2), the naive alternative recomputes every cell
// by rescanning the finalTable; SCube instead mines (closed) itemsets and
// buckets EWAH covers. This bench sweeps minimum support and compares:
//   - all-frequent vs closed-only materialisation,
//   - the mining+bitmap builder vs the naive per-cell rescan baseline.

#include <benchmark/benchmark.h>

#include <map>

#include "cube/builder.h"
#include "cube/cube_view.h"
#include "datagen/scenarios.h"
#include "scube/pipeline.h"

namespace {

using namespace scube;

const relational::Table& FinalTable() {
  static const relational::Table table = [] {
    auto s = datagen::GenerateScenario(datagen::ItalianConfig(0.002));
    pipeline::PipelineConfig config;
    config.unit_source = pipeline::UnitSource::kGroupAttribute;
    config.group_unit_attribute = "sector";
    config.cube.min_support = 1 << 30;  // cube content irrelevant here
    auto r = pipeline::RunPipeline(s->inputs, config);
    return r->final_table;
  }();
  return table;
}

void RunBuilder(benchmark::State& state, fpm::MineMode mode) {
  const relational::Table& table = FinalTable();
  cube::CubeBuilderOptions opts;
  opts.min_support = static_cast<uint64_t>(state.range(0));
  opts.mode = mode;
  opts.max_sa_items = 2;
  opts.max_ca_items = 1;
  cube::CubeBuildStats stats;
  size_t cells = 0;
  for (auto _ : state) {
    auto cube = cube::BuildSegregationCube(table, opts, &stats);
    cells = cube->NumCells();
    benchmark::DoNotOptimize(cube);
  }
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["rows"] = static_cast<double>(table.NumRows());
}

void BM_CubeAllFrequent(benchmark::State& state) {
  RunBuilder(state, fpm::MineMode::kAll);
}
void BM_CubeClosed(benchmark::State& state) {
  RunBuilder(state, fpm::MineMode::kClosed);
}
BENCHMARK(BM_CubeAllFrequent)->Arg(500)->Arg(100)->Arg(20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CubeClosed)->Arg(500)->Arg(100)->Arg(20)
    ->Unit(benchmark::kMillisecond);

// Naive baseline: for every materialised cell, recompute (T, M, t_i, m_i)
// by a full scan of the finalTable — the "process data multiple times"
// approach the paper's data-cube design avoids.
void BM_NaiveCellRescan(benchmark::State& state) {
  const relational::Table& table = FinalTable();
  cube::CubeBuilderOptions opts;
  opts.min_support = static_cast<uint64_t>(state.range(0));
  opts.mode = fpm::MineMode::kClosed;
  opts.max_sa_items = 2;
  opts.max_ca_items = 1;
  auto built = cube::BuildSegregationCube(table, opts);
  cube::CubeView view = std::move(built).value().Seal();
  const auto& catalog = view.catalog();
  int unit_col = table.schema().IndexOf("unitID");

  auto row_matches = [&](size_t row, const fpm::Itemset& items) {
    for (fpm::ItemId item : items.items()) {
      const auto& info = catalog.info(item);
      const auto& spec = table.schema().attribute(info.attr_index);
      if (spec.type == relational::ColumnType::kCategorical) {
        if (table.CategoricalValue(row, info.attr_index) != info.value) {
          return false;
        }
      } else {
        auto values = table.SetValues(row, info.attr_index);
        if (std::find(values.begin(), values.end(), info.value) ==
            values.end()) {
          return false;
        }
      }
    }
    return true;
  };

  for (auto _ : state) {
    double checksum = 0;
    for (const cube::CubeCell& cell : view.Cells()) {
      std::map<uint32_t, std::pair<uint64_t, uint64_t>> per_unit;
      for (size_t row = 0; row < table.NumRows(); ++row) {
        if (!row_matches(row, cell.coords.ca)) continue;
        uint32_t unit =
            table.CategoricalCode(row, static_cast<size_t>(unit_col));
        ++per_unit[unit].first;
        if (row_matches(row, cell.coords.sa)) ++per_unit[unit].second;
      }
      indexes::GroupDistribution dist;
      for (const auto& [unit, tm] : per_unit) {
        dist.AddUnit(tm.first, tm.second);
      }
      auto all = indexes::ComputeAllIndexes(dist);
      if (all.ok() && all->defined) {
        checksum += (*all)[indexes::IndexKind::kDissimilarity];
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["cells"] = static_cast<double>(view.NumCells());
}
BENCHMARK(BM_NaiveCellRescan)->Arg(500)->Arg(100)
    ->Unit(benchmark::kMillisecond);

// Sealing cost: building the CubeView's secondary indexes (coordinate map,
// posting lists, slice groups, adjacency, ranked orders) from a built cube.
// This is paid once per publish, then amortised over every query.
void BM_SealCube(benchmark::State& state) {
  const relational::Table& table = FinalTable();
  cube::CubeBuilderOptions opts;
  opts.min_support = static_cast<uint64_t>(state.range(0));
  opts.mode = fpm::MineMode::kAll;
  opts.max_sa_items = 2;
  opts.max_ca_items = 1;
  auto built = cube::BuildSegregationCube(table, opts);
  for (auto _ : state) {
    // Replace the consumed input outside the timed region, so the
    // measurement matches the publish path (the moving Seal() overload).
    state.PauseTiming();
    cube::SegregationCube cube = *built;
    state.ResumeTiming();
    cube::CubeView view = std::move(cube).Seal();
    benchmark::DoNotOptimize(view);
  }
  state.counters["cells"] = static_cast<double>(built->NumCells());
}
BENCHMARK(BM_SealCube)->Arg(100)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
