// FIG5-BOTTOM: regenerates the radial plot of Figure 5 (bottom) — the six
// segregation indexes of women directors for each of the 20 Italian company
// sectors. Organisational units are headquarters provinces, so each
// sector's indexes measure how unevenly women are spread geographically
// within that sector. Emits fig5_radial.svg.

#include <cstdio>

#include "datagen/scenarios.h"
#include "scube/pipeline.h"
#include "viz/svg.h"

using namespace scube;

int main() {
  auto scenario = datagen::GenerateScenario(datagen::ItalianConfig(0.004));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }

  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupAttribute;
  config.group_unit_attribute = "hq_province";
  config.cube.min_support = 25;
  config.cube.mode = fpm::MineMode::kAll;
  config.cube.max_sa_items = 1;
  config.cube.max_ca_items = 1;
  auto result = pipeline::RunPipeline(scenario->inputs, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const cube::SegregationCube& cube = result->cube;
  const auto& catalog = cube.catalog();

  int gender_col = result->final_table.schema().IndexOf("gender");
  int sector_col = result->final_table.schema().IndexOf("sector");
  fpm::ItemId female = catalog.Find(static_cast<size_t>(gender_col), "F");

  std::printf("FIG5-BOTTOM: six indexes per sector (units = provinces)\n\n");
  std::printf("%-16s %8s %8s %8s %8s %8s %8s\n", "sector", "D", "Gini", "H",
              "xPx", "xPy", "A");

  std::vector<std::string> axes;
  std::array<std::vector<double>, indexes::kNumIndexKinds> series_values;
  for (const auto& sector : datagen::ItalianSectors()) {
    fpm::ItemId item =
        catalog.Find(static_cast<size_t>(sector_col), sector.name);
    if (item == fpm::kInvalidItem) continue;
    const cube::CubeCell* cell =
        cube.Find(fpm::Itemset({female}), fpm::Itemset({item}));
    if (cell == nullptr || !cell->indexes.defined) continue;
    axes.push_back(sector.name);
    std::printf("%-16s", sector.name.c_str());
    for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
      double v = cell->Value(kind);
      series_values[static_cast<size_t>(kind)].push_back(v);
      std::printf(" %8.3f", v);
    }
    std::printf("\n");
  }

  if (axes.size() >= 3) {
    viz::RadialChartSpec spec;
    spec.title = "Segregation of women directors across the 20 sectors";
    spec.axes = axes;
    const char* kColors[] = {"#c0392b", "#2980b9", "#27ae60",
                             "#8e44ad", "#f39c12", "#16a085"};
    for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
      size_t i = static_cast<size_t>(kind);
      spec.series.push_back(viz::RadialSeries{
          indexes::IndexKindToString(kind), series_values[i], kColors[i]});
    }
    auto svg = RenderRadialChart(spec);
    if (svg.ok()) {
      Status saved = WriteStringToFile("fig5_radial.svg", svg.value());
      std::printf("\nfig5_radial.svg: %s (%zu sector axes, 6 index series)\n",
                  saved.ok() ? "written" : "FAILED", axes.size());
    }
  }
  std::printf("Shape check (paper Fig. 5 bottom): isolation+interaction=1 "
              "per sector; male-heavy sectors (construction, mining) show "
              "higher female unevenness than female-leaning ones.\n");
  return 0;
}
