// CROSS: the Italy-vs-Estonia cross-comparison of §4 — the same analysis
// (women directors across sector units) run on both synthetic registries,
// with the six indexes side by side and each country's top segregation
// contexts.

#include <cstdio>

#include "cube/explorer.h"
#include "datagen/scenarios.h"
#include "scube/pipeline.h"

using namespace scube;

namespace {

struct CountryRun {
  const char* label;
  indexes::IndexVector female_global;
  std::string top_contexts;
};

bool RunCountry(const datagen::ScenarioConfig& gen_config, graph::Date date,
                CountryRun* out) {
  auto scenario = datagen::GenerateScenario(gen_config);
  if (!scenario.ok()) return false;
  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupAttribute;
  config.group_unit_attribute = "sector";
  config.date = date;
  config.cube.min_support = 20;
  config.cube.mode = fpm::MineMode::kAll;
  config.cube.max_sa_items = 2;
  config.cube.max_ca_items = 1;
  auto result = pipeline::RunPipeline(scenario->inputs, config);
  if (!result.ok()) return false;

  int gender_col = result->final_table.schema().IndexOf("gender");
  fpm::ItemId female = result->cube.catalog().Find(
      static_cast<size_t>(gender_col), "F");
  const cube::CubeCell* cell =
      female == fpm::kInvalidItem
          ? nullptr
          : result->cube.Find(fpm::Itemset({female}), fpm::Itemset());
  if (cell == nullptr || !cell->indexes.defined) return false;
  out->female_global = cell->indexes;

  cube::ExplorerOptions explore;
  explore.min_context_size = 100;
  explore.min_minority_size = 10;
  cube::CubeView view = std::move(result->cube).Seal();
  auto top = cube::TopSegregatedContexts(
      view, indexes::IndexKind::kDissimilarity, 3, explore);
  for (const auto& rc : top) {
    out->top_contexts += "    D=" +
                         std::to_string(rc.value).substr(0, 5) + "  " +
                         view.LabelOf(rc.cell->coords) + "\n";
  }
  return true;
}

}  // namespace

int main() {
  std::printf("CROSS: Italy vs Estonia, women directors across sector "
              "units\n\n");
  CountryRun italy{"IT (2012 snapshot)", {}, {}};
  CountryRun estonia{"EE (2010 snapshot)", {}, {}};
  if (!RunCountry(datagen::ItalianConfig(0.002), 0, &italy)) {
    std::fprintf(stderr, "IT run failed\n");
    return 1;
  }
  if (!RunCountry(datagen::EstonianConfig(0.02), 2010, &estonia)) {
    std::fprintf(stderr, "EE run failed\n");
    return 1;
  }

  std::printf("%-16s %12s %12s\n", "index", "Italy", "Estonia");
  for (indexes::IndexKind kind : indexes::AllIndexKinds()) {
    std::printf("%-16s %12.3f %12.3f\n", indexes::IndexKindToString(kind),
                italy.female_global[kind], estonia.female_global[kind]);
  }
  std::printf("\ntop contexts, Italy:\n%s", italy.top_contexts.c_str());
  std::printf("top contexts, Estonia:\n%s", estonia.top_contexts.c_str());
  std::printf("\nShape check (§4): both countries show sector-level gender "
              "segregation of comparable evenness (D, Gini); women's "
              "isolation is lower in the Italian registry (smaller female "
              "share, stronger under-representation), and Italy's top "
              "contexts concentrate in southern provinces (the planted "
              "north/south gradient).\n");
  return 0;
}
