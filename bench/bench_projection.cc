// EFF-PROJ: GraphBuilder cost — one-mode projection of the bipartite
// membership graph, scaling with registry size, plus the hub-cap ablation
// (directors on many boards create quadratic cliques).

#include <benchmark/benchmark.h>

#include "datagen/scenarios.h"
#include "graph/projection.h"

namespace {

using namespace scube;

const etl::ScubeInputs& ScenarioAt(int permille) {
  static std::map<int, datagen::GeneratedScenario> cache;
  auto it = cache.find(permille);
  if (it == cache.end()) {
    auto s = datagen::GenerateScenario(
        datagen::ItalianConfig(permille / 1000.0 / 100.0));
    it = cache.emplace(permille, std::move(s).value()).first;
  }
  return it->second.inputs;
}

void BM_ProjectGroups(benchmark::State& state) {
  const etl::ScubeInputs& inputs = ScenarioAt(static_cast<int>(state.range(0)));
  graph::ProjectionOptions opts;
  uint64_t edges = 0;
  for (auto _ : state) {
    auto r = graph::ProjectBipartite(inputs.membership, opts);
    edges = r->graph.NumEdges();
    benchmark::DoNotOptimize(r);
  }
  state.counters["memberships"] =
      static_cast<double>(inputs.membership.NumMemberships());
  state.counters["edges"] = static_cast<double>(edges);
}
// range = scale in 1/100000 of the full Italian registry.
BENCHMARK(BM_ProjectGroups)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_ProjectIndividuals(benchmark::State& state) {
  const etl::ScubeInputs& inputs = ScenarioAt(static_cast<int>(state.range(0)));
  graph::ProjectionOptions opts;
  opts.side = graph::ProjectionSide::kIndividuals;
  for (auto _ : state) {
    auto r = graph::ProjectBipartite(inputs.membership, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ProjectIndividuals)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_ProjectGroupsHubCap(benchmark::State& state) {
  const etl::ScubeInputs& inputs = ScenarioAt(200);
  graph::ProjectionOptions opts;
  opts.hub_cap = static_cast<uint32_t>(state.range(0));
  uint64_t skipped = 0, edges = 0;
  for (auto _ : state) {
    auto r = graph::ProjectBipartite(inputs.membership, opts);
    skipped = r->hubs_skipped;
    edges = r->graph.NumEdges();
    benchmark::DoNotOptimize(r);
  }
  state.counters["hubs_skipped"] = static_cast<double>(skipped);
  state.counters["edges"] = static_cast<double>(edges);
}
// 0 = no cap; small caps drop prolific directors.
BENCHMARK(BM_ProjectGroupsHubCap)->Arg(0)->Arg(10)->Arg(5)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
