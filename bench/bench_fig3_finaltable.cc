// FIG3-TABLE: regenerates the finalTable sample of Figure 3 (bottom-left):
// the output of TableBuilder for the bipartite scenario — one row per
// (individual, organisational unit), with the unit's company attributes
// unioned into set-valued cells ("{electricity, transports}").

#include <cstdio>

#include "datagen/scenarios.h"
#include "scube/pipeline.h"

using namespace scube;

int main() {
  auto scenario = datagen::GenerateScenario(datagen::ItalianConfig(0.0008));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }

  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupClusters;
  config.method = pipeline::ClusterMethod::kThreshold;
  config.threshold.min_weight = 2.0;
  config.cube.min_support = 50;
  config.cube.max_sa_items = 1;
  config.cube.max_ca_items = 1;
  auto result = pipeline::RunPipeline(scenario->inputs, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  const relational::Table& ft = result->final_table;
  std::printf("FIG3-TABLE: finalTable (input of SegregationDataCubeBuilder)\n");
  std::printf("rows=%zu  units=%u\n\n", ft.NumRows(),
              result->clustering.num_clusters);

  // Header.
  for (size_t c = 0; c < ft.schema().NumAttributes(); ++c) {
    std::printf("%-20s", ft.schema().attribute(c).name.c_str());
  }
  std::printf("\n");
  // Prefer rows with multi-valued sector sets (the hallmark of Fig. 3).
  int sector_col = ft.schema().IndexOf("sector");
  size_t shown = 0;
  for (size_t r = 0; r < ft.NumRows() && shown < 6; ++r) {
    if (sector_col >= 0 &&
        ft.SetCodes(r, static_cast<size_t>(sector_col)).size() < 2) {
      continue;
    }
    for (size_t c = 0; c < ft.schema().NumAttributes(); ++c) {
      std::printf("%-20s", ft.CellToString(r, c).substr(0, 19).c_str());
    }
    std::printf("\n");
    ++shown;
  }
  for (size_t r = 0; r < ft.NumRows() && shown < 10; ++r, ++shown) {
    for (size_t c = 0; c < ft.schema().NumAttributes(); ++c) {
      std::printf("%-20s", ft.CellToString(r, c).substr(0, 19).c_str());
    }
    std::printf("\n");
  }

  Status saved = WriteStringToFile("finalTable.csv", ft.ToCsvString());
  std::printf("\nfinalTable.csv: %s\n", saved.ok() ? "written" : "FAILED");
  std::printf("Shape check (paper Fig. 3): set-valued sector cells appear "
              "when a unit spans companies of several sectors.\n");
  return 0;
}
