// EFF-QUERY: SCubeQL serving cost. Measures queries/sec through the
// QueryService under three regimes:
//   - cold cache: every query misses and executes against the cube,
//   - hot cache: repeats answered straight from the LRU result cache,
//   - batched shared scan: a mixed batch fanned out over the worker pool,
//     scan-shaped queries sharing one pass over the cube's cells.
// The worker-thread sweep (1..8) shows the concurrent serving layer
// scaling; hot vs cold shows the cache-hit speedup.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "datagen/scenarios.h"
#include "query/cube_store.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/service.h"
#include "scube/pipeline.h"

namespace {

using namespace scube;

query::CubeStore& Store() {
  static query::CubeStore* store = [] {
    auto s = datagen::GenerateScenario(datagen::ItalianConfig(0.002));
    if (!s.ok()) {
      std::fprintf(stderr, "scenario: %s\n", s.status().ToString().c_str());
      std::abort();
    }
    pipeline::PipelineConfig config;
    config.unit_source = pipeline::UnitSource::kGroupAttribute;
    config.group_unit_attribute = "sector";
    config.cube.min_support = 20;
    config.cube.mode = fpm::MineMode::kAll;
    config.cube.max_sa_items = 2;
    config.cube.max_ca_items = 1;
    auto result = pipeline::RunPipeline(s->inputs, config);
    if (!result.ok()) {
      std::fprintf(stderr, "pipeline: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    auto* st = new query::CubeStore();
    query::PublishPipelineResult(st, "default", std::move(*result));
    return st;
  }();
  return *store;
}

// A mixed workload: scan-shaped analytics, navigation and explorer verbs.
std::vector<std::string> Workload(size_t n) {
  const std::vector<std::string> pool = {
      "TOPK 5 BY dissimilarity WHERE T >= 30",
      "TOPK 10 BY gini WHERE T >= 50 AND M >= 10",
      "TOPK 3 BY isolation",
      "DICE sa=gender=F",
      "DICE ca=residence_region=north WHERE T >= 30",
      "SLICE sa=gender=F",
      "SLICE sa=gender=F | ca=residence_region=north",
      "DRILLDOWN sa=gender=F",
      "ROLLUP sa=gender=F & age_bin=young",
      "SURPRISES BY dissimilarity MINDELTA 0.05 LIMIT 10",
      "REVERSALS MINGAP 0.05 LIMIT 10",
      "TOPK 8 BY atkinson ORDER BY T DESC",
  };
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(pool[i % pool.size()]);
  return out;
}

// Cold cache: capacity 0, so every query parses, plans and executes.
void BM_QueryCold(benchmark::State& state) {
  query::ServiceOptions options;
  options.num_workers = static_cast<size_t>(state.range(0));
  options.cache_capacity = 0;
  query::QueryService service(&Store(), options);
  auto workload = Workload(64);
  for (auto _ : state) {
    auto responses = service.ExecuteBatch(workload);
    benchmark::DoNotOptimize(responses);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
  state.counters["workers"] = static_cast<double>(options.num_workers);
}
BENCHMARK(BM_QueryCold)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Hot cache: one warmup batch, then every query is an LRU hit.
void BM_QueryHot(benchmark::State& state) {
  query::ServiceOptions options;
  options.num_workers = static_cast<size_t>(state.range(0));
  options.cache_capacity = 256;
  query::QueryService service(&Store(), options);
  auto workload = Workload(64);
  auto warmup = service.ExecuteBatch(workload);
  benchmark::DoNotOptimize(warmup);
  for (auto _ : state) {
    auto responses = service.ExecuteBatch(workload);
    benchmark::DoNotOptimize(responses);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
  state.counters["hit_rate"] = [&] {
    auto stats = service.cache_stats();
    return stats.hits + stats.misses == 0
               ? 0.0
               : static_cast<double>(stats.hits) /
                     static_cast<double>(stats.hits + stats.misses);
  }();
}
BENCHMARK(BM_QueryHot)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

// Shared scan vs one-at-a-time: the same 64 scan-shaped queries through
// Executor::ExecuteBatch (one cell pass) and through 64 Execute calls.
void BM_ExecutorSharedScan(benchmark::State& state) {
  auto snapshot = Store().Get("default");
  query::Executor executor(*snapshot);
  std::vector<query::Query> queries;
  for (const std::string& text : Workload(64)) {
    auto q = query::Parse(text);
    if (q.ok() && (q->verb == query::Verb::kTopK ||
                   q->verb == query::Verb::kDice ||
                   q->verb == query::Verb::kSlice)) {
      queries.push_back(std::move(*q));
    }
  }
  bool shared = state.range(0) == 1;
  for (auto _ : state) {
    if (shared) {
      auto results = executor.ExecuteBatch(queries);
      benchmark::DoNotOptimize(results);
    } else {
      for (const query::Query& q : queries) {
        auto result = executor.Execute(q);
        benchmark::DoNotOptimize(result);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.SetLabel(shared ? "shared-scan" : "per-query");
}
BENCHMARK(BM_ExecutorSharedScan)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
