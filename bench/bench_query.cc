// EFF-QUERY: SCubeQL serving cost. Measures queries/sec through the
// QueryService under three regimes:
//   - cold cache: every query misses and executes against the cube,
//   - hot cache: repeats answered straight from the LRU result cache,
//   - batched shared scan: a mixed batch fanned out over the worker pool,
//     analytic queries sharing one pass over the cube's cells.
// The worker-thread sweep (1..8) shows the concurrent serving layer
// scaling; hot vs cold shows the cache-hit speedup.
//
// The Indexed-vs-scan section pits each CubeView secondary index against
// the naive full-scan it replaced, side by side on the same sealed cube:
// slice groups vs coordinate scans, posting-list dice vs subset scans,
// ranked-order top-k vs filter+sort, adjacency surprises vs per-cell hash
// probes, adjacency reversals vs the O(cells^2) children scan.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cube/cube_view.h"
#include "cube/explorer.h"
#include "datagen/scenarios.h"
#include "query/cube_store.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/service.h"
#include "scube/pipeline.h"

namespace {

using namespace scube;

query::CubeStore& Store() {
  static query::CubeStore* store = [] {
    auto s = datagen::GenerateScenario(datagen::ItalianConfig(0.002));
    if (!s.ok()) {
      std::fprintf(stderr, "scenario: %s\n", s.status().ToString().c_str());
      std::abort();
    }
    pipeline::PipelineConfig config;
    config.unit_source = pipeline::UnitSource::kGroupAttribute;
    config.group_unit_attribute = "sector";
    config.cube.min_support = 20;
    config.cube.mode = fpm::MineMode::kAll;
    config.cube.max_sa_items = 2;
    config.cube.max_ca_items = 1;
    auto result = pipeline::RunPipeline(s->inputs, config);
    if (!result.ok()) {
      std::fprintf(stderr, "pipeline: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    auto* st = new query::CubeStore();
    query::PublishPipelineResult(st, "default", std::move(*result));
    return st;
  }();
  return *store;
}

// A mixed workload: scan-shaped analytics, navigation and explorer verbs.
std::vector<std::string> Workload(size_t n) {
  const std::vector<std::string> pool = {
      "TOPK 5 BY dissimilarity WHERE T >= 30",
      "TOPK 10 BY gini WHERE T >= 50 AND M >= 10",
      "TOPK 3 BY isolation",
      "DICE sa=gender=F",
      "DICE ca=residence_region=north WHERE T >= 30",
      "SLICE sa=gender=F",
      "SLICE sa=gender=F | ca=residence_region=north",
      "DRILLDOWN sa=gender=F",
      "ROLLUP sa=gender=F & age_bin=young",
      "SURPRISES BY dissimilarity MINDELTA 0.05 LIMIT 10",
      "REVERSALS MINGAP 0.05 LIMIT 10",
      "TOPK 8 BY atkinson ORDER BY T DESC",
  };
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(pool[i % pool.size()]);
  return out;
}

// Cold cache: capacity 0, so every query parses, plans and executes.
void BM_QueryCold(benchmark::State& state) {
  query::ServiceOptions options;
  options.num_workers = static_cast<size_t>(state.range(0));
  options.cache_capacity = 0;
  query::QueryService service(&Store(), options);
  auto workload = Workload(64);
  for (auto _ : state) {
    auto responses = service.ExecuteBatch(workload);
    benchmark::DoNotOptimize(responses);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
  state.counters["workers"] = static_cast<double>(options.num_workers);
}
BENCHMARK(BM_QueryCold)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Hot cache: one warmup batch, then every query is an LRU hit.
void BM_QueryHot(benchmark::State& state) {
  query::ServiceOptions options;
  options.num_workers = static_cast<size_t>(state.range(0));
  options.cache_capacity = 256;
  query::QueryService service(&Store(), options);
  auto workload = Workload(64);
  auto warmup = service.ExecuteBatch(workload);
  benchmark::DoNotOptimize(warmup);
  for (auto _ : state) {
    auto responses = service.ExecuteBatch(workload);
    benchmark::DoNotOptimize(responses);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
  state.counters["hit_rate"] = [&] {
    auto stats = service.cache_stats();
    return stats.hits + stats.misses == 0
               ? 0.0
               : static_cast<double>(stats.hits) /
                     static_cast<double>(stats.hits + stats.misses);
  }();
}
BENCHMARK(BM_QueryHot)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

// Shared scan vs one-at-a-time: the same 64 scan-shaped queries through
// Executor::ExecuteBatch (one cell pass) and through 64 Execute calls.
void BM_ExecutorSharedScan(benchmark::State& state) {
  auto snapshot = Store().Get("default");
  query::Executor executor(*snapshot);
  std::vector<query::Query> queries;
  for (const std::string& text : Workload(64)) {
    auto q = query::Parse(text);
    if (q.ok() && (q->verb == query::Verb::kTopK ||
                   q->verb == query::Verb::kDice ||
                   q->verb == query::Verb::kSlice)) {
      queries.push_back(std::move(*q));
    }
  }
  bool shared = state.range(0) == 1;
  for (auto _ : state) {
    if (shared) {
      auto results = executor.ExecuteBatch(queries);
      benchmark::DoNotOptimize(results);
    } else {
      for (const query::Query& q : queries) {
        auto result = executor.Execute(q);
        benchmark::DoNotOptimize(result);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.SetLabel(shared ? "shared-scan" : "per-query");
}
BENCHMARK(BM_ExecutorSharedScan)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Indexed vs full-scan: the same questions answered through the CubeView's
// secondary indexes and through the pre-index naive scans.
// ---------------------------------------------------------------------------

const cube::CubeView& View() {
  static const query::CubeStore::Snapshot snapshot = Store().Get("default");
  return *snapshot;
}

// First item of the given attribute name (the bench cube always has it).
fpm::ItemId ItemFor(const cube::CubeView& view, const char* attr) {
  const auto& catalog = view.catalog();
  for (size_t i = 0; i < catalog.size(); ++i) {
    if (catalog.info(static_cast<fpm::ItemId>(i)).attr_name == attr) {
      return static_cast<fpm::ItemId>(i);
    }
  }
  std::fprintf(stderr, "no item for attribute '%s'\n", attr);
  std::abort();
}

// SLICE sa=gender=F: slice-group span vs exact-coordinate scan.
void BM_SliceBySa(benchmark::State& state) {
  const cube::CubeView& view = View();
  fpm::Itemset sa({ItemFor(view, "gender")});
  bool indexed = state.range(0) == 1;
  size_t hits = 0;
  for (auto _ : state) {
    if (indexed) {
      auto ids = view.SliceBySa(sa);
      hits = ids.size();
      benchmark::DoNotOptimize(ids);
    } else {
      std::vector<const cube::CubeCell*> out;
      for (const cube::CubeCell& cell : view.Cells()) {
        if (cell.coords.sa == sa) out.push_back(&cell);
      }
      hits = out.size();
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetLabel(indexed ? "indexed" : "full-scan");
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["cells"] = static_cast<double>(view.NumCells());
}
BENCHMARK(BM_SliceBySa)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

// DICE sa=gender=F ca=residence_region=...: posting intersection vs
// subset-filter scan.
void BM_Dice(benchmark::State& state) {
  const cube::CubeView& view = View();
  fpm::Itemset sa({ItemFor(view, "gender")});
  fpm::Itemset ca({ItemFor(view, "residence_region")});
  bool indexed = state.range(0) == 1;
  size_t hits = 0;
  for (auto _ : state) {
    if (indexed) {
      auto ids = view.Dice(sa, ca);
      hits = ids.size();
      benchmark::DoNotOptimize(ids);
    } else {
      std::vector<const cube::CubeCell*> out;
      for (const cube::CubeCell& cell : view.Cells()) {
        if (sa.IsSubsetOf(cell.coords.sa) && ca.IsSubsetOf(cell.coords.ca)) {
          out.push_back(&cell);
        }
      }
      hits = out.size();
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetLabel(indexed ? "indexed" : "full-scan");
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_Dice)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

// TOPK 10: ranked-order walk vs filter + full sort.
void BM_TopK(benchmark::State& state) {
  const cube::CubeView& view = View();
  cube::ExplorerOptions options;
  bool indexed = state.range(0) == 1;
  for (auto _ : state) {
    if (indexed) {
      auto top = cube::TopSegregatedContexts(
          view, indexes::IndexKind::kDissimilarity, 10, options);
      benchmark::DoNotOptimize(top);
    } else {
      std::vector<cube::RankedCell> ranked;
      for (const cube::CubeCell& cell : view.Cells()) {
        if (!cube::PassesExplorerFilters(cell, options)) continue;
        ranked.push_back(cube::RankedCell{
            &cell, cell.Value(indexes::IndexKind::kDissimilarity)});
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const cube::RankedCell& a, const cube::RankedCell& b) {
                  if (a.value != b.value) return a.value > b.value;
                  return a.cell->coords < b.cell->coords;
                });
      if (ranked.size() > 10) ranked.resize(10);
      benchmark::DoNotOptimize(ranked);
    }
  }
  state.SetLabel(indexed ? "ranked-order" : "filter+sort");
}
BENCHMARK(BM_TopK)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

// SURPRISES: adjacency-list parent walks vs per-cell hash probes.
void BM_Surprises(benchmark::State& state) {
  const cube::CubeView& view = View();
  cube::ExplorerOptions options;
  bool indexed = state.range(0) == 1;
  size_t findings = 0;
  for (auto _ : state) {
    if (indexed) {
      auto out = cube::DrillDownSurprises(
          view, indexes::IndexKind::kDissimilarity, 0.05, options);
      findings = out.size();
      benchmark::DoNotOptimize(out);
    } else {
      std::vector<cube::SurpriseFinding> out;
      for (const cube::CubeCell& cell : view.Cells()) {
        if (!cube::PassesExplorerFilters(cell, options)) continue;
        if (cell.coords.sa.empty() && cell.coords.ca.empty()) continue;
        double best = 0.0;
        bool any = false;
        auto consider = [&](const cube::CubeCell* parent) {
          if (parent == nullptr || !parent->indexes.defined ||
              parent->coords.sa.empty()) {
            return;
          }
          any = true;
          best = std::max(
              best, parent->Value(indexes::IndexKind::kDissimilarity));
        };
        for (fpm::ItemId item : cell.coords.sa.items()) {
          consider(view.Find(cell.coords.sa.Minus(fpm::Itemset({item})),
                             cell.coords.ca));
        }
        for (fpm::ItemId item : cell.coords.ca.items()) {
          consider(view.Find(cell.coords.sa,
                             cell.coords.ca.Minus(fpm::Itemset({item}))));
        }
        if (!any) continue;
        double delta =
            cell.Value(indexes::IndexKind::kDissimilarity) - best;
        if (delta >= 0.05) {
          out.push_back(cube::SurpriseFinding{
              &cell, cell.Value(indexes::IndexKind::kDissimilarity), best,
              delta});
        }
      }
      cube::SortSurprises(&out);
      findings = out.size();
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetLabel(indexed ? "adjacency" : "hash-probe");
  state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_Surprises)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

// REVERSALS: adjacency children vs a full scan per parent (O(cells^2)).
void BM_Reversals(benchmark::State& state) {
  const cube::CubeView& view = View();
  cube::ExplorerOptions options;
  bool indexed = state.range(0) == 1;
  size_t findings = 0;
  for (auto _ : state) {
    if (indexed) {
      auto out = cube::FindGranularityReversals(
          view, indexes::IndexKind::kDissimilarity, 0.05, options);
      findings = out.size();
      benchmark::DoNotOptimize(out);
    } else {
      std::vector<cube::GranularityReversal> out;
      for (const cube::CubeCell& parent : view.Cells()) {
        if (!cube::PassesExplorerFilters(parent, options)) continue;
        std::vector<const cube::CubeCell*> children;
        for (const cube::CubeCell& child : view.Cells()) {  // the old scan
          if (child.coords.sa == parent.coords.sa &&
              child.coords.ca.size() == parent.coords.ca.size() + 1 &&
              parent.coords.ca.IsSubsetOf(child.coords.ca) &&
              child.indexes.defined &&
              child.context_size >= options.min_context_size &&
              child.minority_size >= options.min_minority_size) {
            children.push_back(&child);
          }
        }
        if (children.size() < 2) continue;
        double pv = parent.Value(indexes::IndexKind::kDissimilarity);
        bool all_above = true, all_below = true;
        double min_child = 1e300, max_child = -1e300;
        for (const cube::CubeCell* child : children) {
          double v = child->Value(indexes::IndexKind::kDissimilarity);
          min_child = std::min(min_child, v);
          max_child = std::max(max_child, v);
          if (v < pv + 0.05) all_above = false;
          if (v > pv - 0.05) all_below = false;
        }
        if (all_above) {
          out.push_back(cube::GranularityReversal{&parent, children, pv,
                                                  min_child, true});
        } else if (all_below) {
          out.push_back(cube::GranularityReversal{&parent, children, pv,
                                                  max_child, false});
        }
      }
      cube::SortReversals(&out);
      findings = out.size();
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetLabel(indexed ? "adjacency" : "full-scan");
  state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_Reversals)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

}  // namespace

// Not BENCHMARK_MAIN(): the trajectory record (BENCH_query.json) is
// written by default so CI can archive it, while --benchmark_out=...
// still overrides.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Exact flag only: --benchmark_out_format alone must not suppress the
    // default output file.
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
        std::strcmp(argv[i], "--benchmark_out") == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_query.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
