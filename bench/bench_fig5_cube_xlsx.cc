// FIG5-TOP: regenerates the sample multidimensional segregation cube of
// Figure 5 (top) — the scube.xlsx workbook the Visualizer hands to Excel /
// LibreOffice — and prints its head rows.

#include <cstdio>

#include "datagen/scenarios.h"
#include "scube/pipeline.h"
#include "viz/xlsx_writer.h"

using namespace scube;

int main() {
  auto scenario = datagen::GenerateScenario(datagen::ItalianConfig(0.002));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }

  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupClusters;
  config.method = pipeline::ClusterMethod::kThreshold;
  config.threshold.min_weight = 2.0;
  config.cube.min_support = 25;
  config.cube.mode = fpm::MineMode::kClosed;
  config.cube.max_sa_items = 2;
  config.cube.max_ca_items = 1;
  auto result = pipeline::RunPipeline(scenario->inputs, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  cube::CubeView cube = std::move(result->cube).Seal();

  std::printf("FIG5-TOP: multidimensional segregation cube -> scube.xlsx\n");
  std::printf("cells=%zu defined=%zu units=%u\n\n", cube.NumCells(),
              cube.NumDefinedCells(), result->clustering.num_clusters);

  std::printf("%-42s %-30s %8s %8s %8s %8s\n", "subgroup", "context", "T",
              "M", "D", "Gini");
  size_t shown = 0;
  for (const cube::CubeCell& cell : cube.Cells()) {
    if (!cell.indexes.defined) continue;
    std::printf("%-42s %-30s %8llu %8llu %8.3f %8.3f\n",
                cube.catalog().LabelSet(cell.coords.sa).substr(0, 41).c_str(),
                cube.catalog().LabelSet(cell.coords.ca).substr(0, 29).c_str(),
                static_cast<unsigned long long>(cell.context_size),
                static_cast<unsigned long long>(cell.minority_size),
                cell.Value(indexes::IndexKind::kDissimilarity),
                cell.Value(indexes::IndexKind::kGini));
    if (++shown >= 12) break;
  }

  Status saved = viz::WriteCubeXlsx(cube, "scube.xlsx");
  std::printf("\nscube.xlsx: %s (%zu cube rows, OOXML/SpreadsheetML in a "
              "stored ZIP)\n",
              saved.ok() ? "written" : "FAILED", cube.NumCells());
  std::printf("Shape check (paper Fig. 5 top): one row per cube cell with "
              "all six indexes; '-' for undefined cells.\n");
  return 0;
}
