// FIG3-MAP: regenerates the per-province dissimilarity report of Figure 3
// (right) — the map overlay of the dissimilarity index of women directors
// for every Italian province. Units are company sectors; each province is a
// CA context. Also emits fig3_provinces.svg (tile map standing in for the
// GIS overlay).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "datagen/scenarios.h"
#include "scube/pipeline.h"
#include "viz/svg.h"

using namespace scube;

int main() {
  auto scenario = datagen::GenerateScenario(datagen::ItalianConfig(0.004));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }

  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupAttribute;
  config.group_unit_attribute = "sector";
  config.cube.min_support = 30;
  config.cube.mode = fpm::MineMode::kAll;
  config.cube.max_sa_items = 1;
  config.cube.max_ca_items = 1;
  auto result = pipeline::RunPipeline(scenario->inputs, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const cube::SegregationCube& cube = result->cube;
  const auto& catalog = cube.catalog();

  int gender_col = result->final_table.schema().IndexOf("gender");
  int prov_col = result->final_table.schema().IndexOf("residence_province");
  fpm::ItemId female = catalog.Find(static_cast<size_t>(gender_col), "F");
  if (female == fpm::kInvalidItem) {
    std::fprintf(stderr, "no female item\n");
    return 1;
  }

  struct ProvinceRow {
    std::string name;
    std::string region;
    double dissimilarity;
    double female_share;
    uint64_t population;
  };
  std::vector<ProvinceRow> report;
  for (const auto& p : datagen::ItalianProvinces()) {
    fpm::ItemId item = catalog.Find(static_cast<size_t>(prov_col), p.name);
    if (item == fpm::kInvalidItem) continue;
    const cube::CubeCell* cell =
        cube.Find(fpm::Itemset({female}), fpm::Itemset({item}));
    if (cell == nullptr || !cell->indexes.defined) continue;
    report.push_back(ProvinceRow{
        p.name, p.region,
        cell->Value(indexes::IndexKind::kDissimilarity),
        static_cast<double>(cell->minority_size) /
            static_cast<double>(cell->context_size),
        cell->context_size});
  }
  std::sort(report.begin(), report.end(),
            [](const ProvinceRow& a, const ProvinceRow& b) {
              return a.dissimilarity > b.dissimilarity;
            });

  std::printf("FIG3-MAP: dissimilarity of women directors per province "
              "(units = 20 sectors)\n\n");
  std::printf("%-16s %-7s %-9s %-10s %-9s\n", "province", "region", "D",
              "femShare", "T");
  double north_share = 0, south_share = 0;
  int north_n = 0, south_n = 0;
  for (const ProvinceRow& r : report) {
    std::printf("%-16s %-7s %-9.3f %-10.3f %-9llu\n", r.name.c_str(),
                r.region.c_str(), r.dissimilarity, r.female_share,
                static_cast<unsigned long long>(r.population));
    if (r.region == "north") {
      north_share += r.female_share;
      ++north_n;
    } else {
      south_share += r.female_share;
      ++south_n;
    }
  }
  if (north_n > 0 && south_n > 0) {
    std::printf("\nmean female share: north %.3f vs south %.3f "
                "(planted gradient: north > south)\n",
                north_share / north_n, south_share / south_n);
  }

  viz::TileMapSpec map;
  map.title = "Dissimilarity of women directors by province";
  for (const ProvinceRow& r : report) {
    map.tiles.emplace_back(r.name, r.dissimilarity);
  }
  auto svg = RenderTileMap(map);
  if (svg.ok()) {
    Status saved = WriteStringToFile("fig3_provinces.svg", svg.value());
    std::printf("fig3_provinces.svg: %s\n",
                saved.ok() ? "written" : "FAILED");
  }
  std::printf("Shape check (paper Fig. 3 right): provinces differ visibly "
              "in D; the south shows lower female presence.\n");
  return 0;
}
