// EFF-CLUST: the GraphClustering methods of §3 — BFS connected components,
// weight-threshold CC (the method of [4]), SToC (attributed, [3]) — plus
// Louvain, on the projected company graph. Cluster counts and giant-cluster
// size are reported as counters: CC yields one giant component; threshold
// and SToC break it into meaningful units.

#include <benchmark/benchmark.h>

#include "datagen/scenarios.h"
#include "graph/connected_components.h"
#include "graph/louvain.h"
#include "graph/projection.h"
#include "graph/stoc.h"
#include "graph/threshold_clustering.h"
#include "scube/pipeline.h"

namespace {

using namespace scube;

struct ProjectedScenario {
  graph::Graph graph;
  graph::NodeAttributes attrs;
};

const ProjectedScenario& Projected() {
  static const ProjectedScenario ps = [] {
    auto s = datagen::GenerateScenario(datagen::ItalianConfig(0.002));
    auto proj = graph::ProjectBipartite(s->inputs.membership,
                                        graph::ProjectionOptions{});
    ProjectedScenario out;
    out.graph = std::move(proj->graph);
    out.attrs = pipeline::BuildNodeAttributes(s->inputs.groups);
    return out;
  }();
  return ps;
}

void ReportClusters(benchmark::State& state, const graph::Clustering& c) {
  state.counters["clusters"] = static_cast<double>(c.num_clusters);
  state.counters["giant"] = static_cast<double>(c.GiantSize());
}

void BM_ConnectedComponents(benchmark::State& state) {
  const auto& ps = Projected();
  graph::Clustering c;
  for (auto _ : state) {
    c = graph::ConnectedComponents(ps.graph);
    benchmark::DoNotOptimize(c);
  }
  ReportClusters(state, c);
}
BENCHMARK(BM_ConnectedComponents)->Unit(benchmark::kMillisecond);

void BM_ThresholdClustering(benchmark::State& state) {
  const auto& ps = Projected();
  graph::ThresholdClusteringOptions opts;
  opts.min_weight = static_cast<double>(state.range(0));
  graph::Clustering c;
  for (auto _ : state) {
    c = graph::ThresholdClustering(ps.graph, opts).value();
    benchmark::DoNotOptimize(c);
  }
  ReportClusters(state, c);
}
BENCHMARK(BM_ThresholdClustering)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_Stoc(benchmark::State& state) {
  const auto& ps = Projected();
  graph::StocOptions opts;
  opts.tau = static_cast<double>(state.range(0)) / 100.0;
  graph::Clustering c;
  for (auto _ : state) {
    c = graph::StocClustering(ps.graph, ps.attrs, opts).value();
    benchmark::DoNotOptimize(c);
  }
  ReportClusters(state, c);
}
BENCHMARK(BM_Stoc)->Arg(20)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_Louvain(benchmark::State& state) {
  const auto& ps = Projected();
  graph::Clustering c;
  for (auto _ : state) {
    c = graph::LouvainClustering(ps.graph).value();
    benchmark::DoNotOptimize(c);
  }
  ReportClusters(state, c);
  state.counters["modularity"] = graph::Modularity(ps.graph, c);
}
BENCHMARK(BM_Louvain)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
