// FIG1: regenerates the paper's Figure 1 — a 3-dimensional segregation data
// cube (sex x age x region) filled with the dissimilarity index, including
// the "⋆" roll-up coordinates and the "-" cells (undefined / infrequent).
//
// The population is synthetic (the paper draws it from the Italian case
// study); organisational units are six job types with planted gender/age
// imbalances so the grid shows the same qualitative structure: values
// spread over [0,1], roll-ups smoother than drill-downs, dashes where the
// minority is degenerate or infrequent.

#include <cstdio>

#include "common/random.h"
#include "cube/builder.h"
#include "viz/report.h"

using namespace scube;

int main() {
  using relational::AttributeKind;
  using relational::ColumnType;

  relational::Schema schema({
      {"sex", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"age", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"region", ColumnType::kCategorical, AttributeKind::kContext},
      {"job", ColumnType::kCategorical, AttributeKind::kUnit},
  });
  relational::Table table(schema);

  const char* kJobs[] = {"engineer", "teacher", "nurse",
                         "manager", "clerk", "builder"};
  // Planted P(female | job): strongly uneven.
  const double kFemaleByJob[] = {0.15, 0.65, 0.85, 0.25, 0.55, 0.05};
  const char* kAges[] = {"young", "middle", "elder"};
  const char* kRegions[] = {"north", "south"};

  Rng rng(1234);
  for (int i = 0; i < 4000; ++i) {
    size_t job = rng.NextBounded(6);
    size_t region = rng.NextBounded(2);
    // South skews older and slightly less female in every job.
    size_t age = rng.NextCategorical(
        region == 0 ? std::vector<double>{0.35, 0.40, 0.25}
                    : std::vector<double>{0.25, 0.40, 0.35});
    double female_p = kFemaleByJob[job] - (region == 1 ? 0.07 : 0.0);
    const char* sex = rng.NextBool(female_p) ? "female" : "male";
    Status s = table.AppendRowFromStrings(
        {sex, kAges[age], kRegions[region], kJobs[job]});
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  cube::CubeBuilderOptions options;
  options.min_support = 40;  // infrequent cells become "-" (as in Fig. 1)
  options.mode = fpm::MineMode::kAll;
  options.max_sa_items = 2;
  options.max_ca_items = 1;
  cube::CubeBuildStats stats;
  auto built = cube::BuildSegregationCube(table, options, &stats);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  cube::CubeView cube = std::move(built).value().Seal();

  std::printf("FIG1: segregation data cube with dissimilarity index\n");
  std::printf("population=%zu units=6 job types; cells=%zu (defined %zu); "
              "mined itemsets=%llu\n\n",
              table.NumRows(), cube.NumCells(), cube.NumDefinedCells(),
              static_cast<unsigned long long>(stats.mined_itemsets));

  // One sex x region grid per age slab (matching Fig. 1's age dimension).
  const auto& catalog = cube.catalog();
  for (const char* age : {"young", "middle", "elder"}) {
    fpm::ItemId item = catalog.Find(1, age);
    viz::PivotSpec spec;
    spec.sa_attribute = "sex";
    spec.ca_attribute = "region";
    if (item != fpm::kInvalidItem) spec.fixed_sa = fpm::Itemset({item});
    auto grid = viz::RenderPivotTable(cube, spec);
    std::printf("age = %s\n%s\n", age,
                grid.ok() ? grid->c_str() : grid.status().ToString().c_str());
  }
  viz::PivotSpec star;
  star.sa_attribute = "sex";
  star.ca_attribute = "region";
  auto grid = viz::RenderPivotTable(cube, star);
  std::printf("age = *\n%s\n",
              grid.ok() ? grid->c_str() : grid.status().ToString().c_str());

  std::printf("Shape checks (paper Fig. 1): values in [0,1]; '-' appears "
              "for degenerate/infrequent cells; nurse/builder jobs drive "
              "high sex dissimilarity.\n");
  return 0;
}
