// TEMPORAL: the Estonian-registry capability of §3 — membership validity
// intervals + snapshot dates yield a per-year segregation time series. The
// planted feminisation drift must surface as a rising female share (and a
// generally easing evenness gap) across the 20 snapshots. Emits
// fig_temporal.svg.

#include <cstdio>

#include "datagen/scenarios.h"
#include "scube/temporal.h"
#include "viz/svg.h"

using namespace scube;

int main() {
  auto scenario = datagen::GenerateScenario(datagen::EstonianConfig(0.01));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("TEMPORAL: synthetic Estonian registry, %zu snapshots\n",
              scenario->snapshot_years.size());
  std::printf("directors=%zu companies=%zu memberships=%zu\n\n",
              scenario->inputs.individuals.NumRows(),
              scenario->inputs.groups.NumRows(),
              scenario->inputs.membership.NumMemberships());

  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupAttribute;
  config.group_unit_attribute = "sector";
  config.cube.min_support = 5;
  config.cube.mode = fpm::MineMode::kAll;
  config.cube.max_sa_items = 1;
  config.cube.max_ca_items = 0;

  pipeline::TrackedCell female;
  female.sa = {{"gender", "F"}};
  auto result = pipeline::RunTemporalAnalysis(
      scenario->inputs, config, scenario->snapshot_years, {female});
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-6s %8s %10s %8s %8s %8s\n", "year", "seats", "femShare",
              "D", "Gini", "H");
  viz::LineChartSpec chart;
  chart.title = "Women on Estonian boards: share and segregation by year";
  viz::LineSeries share_series{"female share", {}, "#2980b9"};
  viz::LineSeries d_series{"dissimilarity", {}, "#c0392b"};
  viz::LineSeries gini_series{"gini", {}, "#27ae60"};
  double first_share = -1, last_share = -1;

  for (const pipeline::TemporalPoint& p : result->series[0]) {
    if (!p.defined) continue;
    double share = p.MinorityShare();
    if (first_share < 0) first_share = share;
    last_share = share;
    chart.x_labels.push_back(std::to_string(p.date));
    share_series.values.push_back(share);
    d_series.values.push_back(
        p.indexes[indexes::IndexKind::kDissimilarity]);
    gini_series.values.push_back(p.indexes[indexes::IndexKind::kGini]);
    std::printf("%-6lld %8llu %10.3f %8.3f %8.3f %8.3f\n",
                static_cast<long long>(p.date),
                static_cast<unsigned long long>(p.context_size), share,
                p.indexes[indexes::IndexKind::kDissimilarity],
                p.indexes[indexes::IndexKind::kGini],
                p.indexes[indexes::IndexKind::kInformation]);
  }

  if (chart.x_labels.size() >= 2) {
    chart.series = {share_series, d_series, gini_series};
    auto svg = viz::RenderLineChart(chart);
    if (svg.ok()) {
      Status saved = WriteStringToFile("fig_temporal.svg", svg.value());
      std::printf("\nfig_temporal.svg: %s\n",
                  saved.ok() ? "written" : "FAILED");
    }
  }
  std::printf("\nShape check: female share rises over the registry's life "
              "(%.3f -> %.3f; planted drift +0.15).\n", first_share,
              last_share);
  return 0;
}
