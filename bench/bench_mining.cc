// EFF-MINE: the mining-engine comparison behind §3's efficiency discussion.
// FP-Growth (production engine, the Borgelt-FPGrowth stand-in) vs Eclat vs
// Apriori vs brute force, across minimum-support levels, plus the all-vs-
// closed ablation. Expected shape: FP-Growth and Eclat lead, Apriori trails
// at low support, brute force is hopeless beyond toy sizes; closed-mode
// output is a fraction of all-mode output on correlated data.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "fpm/brute_force.h"
#include "fpm/registry.h"
#include "fpm/transaction_db.h"

namespace {

using namespace scube;

// Correlated transactions resembling an encoded finalTable: a few
// high-frequency demographic items plus correlated context items.
fpm::TransactionDb MakeDb(size_t num_transactions, uint64_t seed = 42) {
  Rng rng(seed);
  fpm::TransactionDb db;
  for (size_t t = 0; t < num_transactions; ++t) {
    std::vector<fpm::ItemId> items;
    items.push_back(rng.NextBool(0.3) ? 0 : 1);            // gender
    items.push_back(2 + static_cast<fpm::ItemId>(rng.NextBounded(4)));  // age
    fpm::ItemId region = 6 + static_cast<fpm::ItemId>(rng.NextBounded(2));
    items.push_back(region);
    // Province correlated with region.
    items.push_back(8 + (region - 6) * 10 +
                    static_cast<fpm::ItemId>(rng.NextZipf(10, 1.3)) - 1);
    // Sector; mildly correlated with gender.
    fpm::ItemId sector = 28 + static_cast<fpm::ItemId>(
        rng.NextZipf(20, items[0] == 0 ? 1.1 : 1.4)) - 1;
    items.push_back(sector);
    db.AddTransaction(std::move(items));
  }
  return db;
}

const fpm::TransactionDb& SharedDb() {
  static const fpm::TransactionDb db = MakeDb(20000);
  return db;
}

void RunMiner(benchmark::State& state, const std::string& engine,
              fpm::MineMode mode) {
  const fpm::TransactionDb& db = SharedDb();
  auto miner = fpm::MakeMiner(engine);
  fpm::MinerOptions opts;
  opts.min_support = static_cast<uint64_t>(state.range(0));
  opts.mode = mode;
  opts.max_length = 5;
  size_t found = 0;
  for (auto _ : state) {
    auto result = miner.value()->Mine(db, opts);
    found = result.value().size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["itemsets"] = static_cast<double>(found);
}

void BM_FpGrowth(benchmark::State& state) {
  RunMiner(state, "fpgrowth", fpm::MineMode::kAll);
}
void BM_Eclat(benchmark::State& state) {
  RunMiner(state, "eclat", fpm::MineMode::kAll);
}
void BM_Apriori(benchmark::State& state) {
  RunMiner(state, "apriori", fpm::MineMode::kAll);
}
void BM_FpGrowthClosed(benchmark::State& state) {
  RunMiner(state, "fpgrowth", fpm::MineMode::kClosed);
}

// Support sweep: 5%, 1%, 0.2% of 20k transactions.
BENCHMARK(BM_FpGrowth)->Arg(1000)->Arg(200)->Arg(40)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Eclat)->Arg(1000)->Arg(200)->Arg(40)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Apriori)->Arg(1000)->Arg(200)->Arg(40)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FpGrowthClosed)->Arg(1000)->Arg(200)->Arg(40)
    ->Unit(benchmark::kMillisecond);

// Brute force only at toy scale (exponential).
void BM_BruteForceToy(benchmark::State& state) {
  static const fpm::TransactionDb db = MakeDb(300, 7);
  fpm::BruteForceMiner miner;
  fpm::MinerOptions opts;
  opts.min_support = static_cast<uint64_t>(state.range(0));
  opts.max_length = 4;
  for (auto _ : state) {
    auto result = miner.Mine(db, opts);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BruteForceToy)->Arg(15)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
