// INDEXES: throughput of the six segregation indexes (§2) over growing unit
// counts, the O(n log n) Gini vs its O(n^2) reference, and the permutation
// significance test.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "indexes/segregation_index.h"
#include "indexes/significance.h"

namespace {

using namespace scube;

indexes::GroupDistribution MakeDistribution(size_t num_units, uint64_t seed) {
  Rng rng(seed);
  indexes::GroupDistribution d;
  for (size_t i = 0; i < num_units; ++i) {
    uint64_t t = 1 + rng.NextBounded(500);
    uint64_t m = rng.NextBounded(t + 1);
    d.AddUnit(t, m);
  }
  return d;
}

void BM_AllSixIndexes(benchmark::State& state) {
  auto d = MakeDistribution(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto all = indexes::ComputeAllIndexes(d);
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AllSixIndexes)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_GiniFast(benchmark::State& state) {
  auto d = MakeDistribution(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    auto g = indexes::Gini(d);
    benchmark::DoNotOptimize(g);
  }
}
void BM_GiniQuadratic(benchmark::State& state) {
  auto d = MakeDistribution(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    auto g = indexes::GiniQuadraticReference(d);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GiniFast)->Arg(100)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GiniQuadratic)->Arg(100)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

void BM_PermutationTest(benchmark::State& state) {
  auto d = MakeDistribution(50, 9);
  indexes::SignificanceOptions opts;
  opts.num_samples = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto r = indexes::PermutationTest(indexes::IndexKind::kDissimilarity, d,
                                      opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PermutationTest)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
