// bench_server: loopback load against the scubed serving front-end.
//
// Three phases over the demo cube, all through real HTTP on 127.0.0.1:
//   1. closed loop   N keep-alive clients, back-to-back requests ->
//                    sustained qps, p50/p99 latency (the capacity probe)
//   2. open loop 2x  requests offered at twice the measured capacity ->
//                    shed rate (503s), p99 of *accepted* requests, which
//                    stays bounded by the deadline instead of queueing
//   3. publish       a new cube version is published mid-load with
//                    cache warming -> cache hit rate before/after, and
//                    every response stays well-formed
//   4. streaming     a synthetic wide cube (default 100k rows in one
//                    slice) served once buffered and once with chunked
//                    streaming (?stream=1) -> time-to-first-byte and the
//                    server's peak response buffer: the streamed peak is
//                    the chunk flush threshold regardless of row count,
//                    the buffered peak is the whole serialised body
//   5. sharded       the demo cube partitioned across 1 / 2 / 4 in-process
//                    shard scubeds behind a scatter-gather router, loaded
//                    with the cache-busting mix -> qps and latency per
//                    topology, and the answers stay well-formed end to end
//   6. idle conns    the reactor front-end holds ~10k mostly-idle
//                    keep-alive connections on a fixed dispatch pool
//                    while a closed-loop querier runs -> steady p50/p99
//                    under the idle herd, and the open-connection gauge
//                    (the threaded path would need a thread per conn)
//
// Writes the trajectory record BENCH_server.json next to the binary.
//
// Run:  ./bench_server [--quick] [--scale S] [--workers N] [--seconds T]
//                      [--rows R] [--idle-conns C]

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/partition.h"
#include "cluster/scatter.h"
#include "common/timer.h"
#include "common/trace.h"
#include "cube/cube_view.h"
#include "datagen/scenarios.h"
#include "net/http.h"
#include "net/socket.h"
#include "query/cube_store.h"
#include "query/service.h"
#include "scube/pipeline.h"
#include "server/server.h"

using namespace scube;

namespace {

struct LoadResult {
  uint64_t ok = 0;        ///< HTTP 200
  uint64_t shed = 0;      ///< HTTP 503
  uint64_t expired = 0;   ///< body contained a DeadlineExceeded code
  uint64_t errors = 0;    ///< transport or unexpected status
  double seconds = 0;

  double Qps() const {
    return seconds > 0 ? static_cast<double>(ok) / seconds : 0;
  }
  void Merge(const LoadResult& other) {
    ok += other.ok;
    shed += other.shed;
    expired += other.expired;
    errors += other.errors;
  }
};

const std::vector<std::string>& QueryMix() {
  static const std::vector<std::string> mix = {
      "TOPK 5 BY dissimilarity WHERE T >= 30",
      "SLICE sa=gender=F",
      "DICE sa=gender=F WHERE T >= 50",
      "DRILLDOWN sa=gender=F",
      "TOPK 3 BY gini",
      "SURPRISES BY dissimilarity MINDELTA 0.05 LIMIT 5",
      "ROLLUP sa=gender=F | ca=residence_region=north",
      "TOPK 5 BY dissimilarity WHERE T >= 30",  // repeat: cache food
  };
  return mix;
}

/// Cache-busting variant stream: distinct canonical texts, so every
/// request costs real executor work instead of a cache hit. Every 16th
/// is a SURPRISES scan to keep the workers honestly busy.
std::string CacheBustQuery(size_t n) {
  if (n % 16 == 0) {
    return "SURPRISES BY dissimilarity MINDELTA 0." +
           std::to_string(10 + n % 80) + " LIMIT 5";
  }
  return "TOPK 5 BY dissimilarity WHERE T >= " +
         std::to_string(30 + n % 997) + " AND M >= " +
         std::to_string(1 + n % 13);
}

/// One client worker: issues requests until the deadline; `pace_s` > 0
/// turns the closed loop into an open loop with that inter-send gap.
/// HTTP-200 latencies land in `hist` — the same atomic-bucket histogram
/// the server exports, shared across all clients of a phase (LoadResult
/// is merged by value; an atomic histogram cannot ride in it).
LoadResult RunClient(uint16_t port, double seconds, double pace_s,
                     size_t offset, bool cache_bust,
                     trace::LatencyHistogram* hist) {
  LoadResult out;
  auto connected = net::Connect("127.0.0.1", port);
  if (!connected.ok()) {
    out.errors = 1;
    return out;
  }
  net::Socket socket = std::move(connected).value();
  socket.SetNoDelay();
  net::BufferedReader reader(&socket);

  const auto& mix = QueryMix();
  WallTimer total;
  size_t i = offset;
  auto next_send = std::chrono::steady_clock::now();
  while (total.Seconds() < seconds) {
    if (pace_s > 0) {
      std::this_thread::sleep_until(next_send);
      next_send += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(pace_s));
    }
    const std::string query =
        cache_bust ? CacheBustQuery(i++ * 131 + offset)
                   : mix[i++ % mix.size()];
    WallTimer latency;
    auto resp = net::RoundTrip(&socket, &reader, "POST", "/query", query);
    if (!resp.ok()) {
      // The server may close a kept-alive connection during shutdown or
      // shedding; reconnect once and retry the slot.
      auto again = net::Connect("127.0.0.1", port);
      if (!again.ok()) {
        ++out.errors;
        break;
      }
      socket = std::move(again).value();
      socket.SetNoDelay();
      reader = net::BufferedReader(&socket);
      continue;
    }
    if (resp->status == 200) {
      ++out.ok;
      hist->Observe(latency.Millis());
      if (resp->body.find("\"DeadlineExceeded\"") != std::string::npos) {
        ++out.expired;
      }
    } else if (resp->status == 503) {
      ++out.shed;
    } else {
      ++out.errors;
    }
  }
  out.seconds = total.Seconds();
  return out;
}

LoadResult RunLoad(uint16_t port, size_t clients, double seconds,
                   double offered_qps, trace::LatencyHistogram* hist,
                   bool cache_bust = false) {
  std::vector<LoadResult> results(clients);
  std::vector<std::thread> threads;
  double pace_s =
      offered_qps > 0 ? static_cast<double>(clients) / offered_qps : 0;
  WallTimer timer;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      results[c] = RunClient(port, seconds, pace_s, c, cache_bust, hist);
    });
  }
  for (auto& t : threads) t.join();
  LoadResult merged;
  for (auto& r : results) merged.Merge(r);
  merged.seconds = timer.Seconds();
  return merged;
}

cube::SegregationCube BuildDemoCube(double scale, uint32_t seed_offset) {
  auto scenario = datagen::GenerateScenario(datagen::ItalianConfig(scale));
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    std::exit(1);
  }
  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupClusters;
  config.method = pipeline::ClusterMethod::kThreshold;
  config.threshold.min_weight = 2.0;
  config.cube.min_support = 20 + seed_offset;  // v2 differs slightly
  config.cube.mode = fpm::MineMode::kClosed;
  config.cube.max_sa_items = 2;
  config.cube.max_ca_items = 1;
  auto result = pipeline::RunPipeline(scenario->inputs, config);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result->cube);
}

double HitRate(const query::ResultCache::Stats& stats) {
  uint64_t total = stats.hits + stats.misses;
  return total == 0 ? 0.0
                    : static_cast<double>(stats.hits) /
                          static_cast<double>(total);
}

// ---------------------------------------------------------------------------
// Phase 4: streamed vs buffered serving of one very wide answer.
// ---------------------------------------------------------------------------

/// A synthetic cube whose `SLICE sa=group=minority` answer has exactly
/// `rows` rows: one SA item shared by every cell, one distinct CA item
/// per cell. Built directly (no mining) so the bench scales to 100k rows
/// in well under a second.
cube::SegregationCube BuildWideCube(size_t rows) {
  relational::ItemCatalog catalog;
  using relational::AttributeKind;
  fpm::ItemId sa_item =
      catalog.GetOrAdd(0, "group", "minority", AttributeKind::kSegregation);
  std::vector<fpm::ItemId> ca_items;
  ca_items.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    ca_items.push_back(catalog.GetOrAdd(1, "ctx", "c" + std::to_string(i),
                                        AttributeKind::kContext));
  }
  cube::SegregationCube cube(std::move(catalog), {"u0", "u1"});
  for (size_t i = 0; i < rows; ++i) {
    cube::CubeCell cell;
    cell.coords = cube::CellCoordinates{fpm::Itemset({sa_item}),
                                        fpm::Itemset({ca_items[i]})};
    cell.context_size = 100 + i % 1000;
    cell.minority_size = 10 + i % 90;
    cell.num_units = 2;
    cell.indexes.defined = true;
    cell.indexes.values[static_cast<size_t>(
        indexes::IndexKind::kDissimilarity)] =
        static_cast<double>(i % 1000) / 1000.0;
    cube.Insert(cell);
  }
  return cube;
}

/// One timed HTTP request: TTFB is the wall time until the status line is
/// readable, total includes draining the (possibly chunked) body.
struct TimedResponse {
  int status = 0;
  double ttfb_ms = 0;
  double total_ms = 0;
  size_t body_bytes = 0;
  bool ok = false;
};

TimedResponse TimedRequest(uint16_t port, const std::string& target,
                           const std::string& body) {
  TimedResponse out;
  auto connected = net::Connect("127.0.0.1", port);
  if (!connected.ok()) return out;
  net::Socket socket = std::move(connected).value();
  socket.SetNoDelay();
  net::BufferedReader reader(&socket);
  std::string request = "POST " + target + " HTTP/1.1\r\n";
  request += "Host: localhost\r\nContent-Type: text/plain\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: keep-alive\r\n\r\n";
  request += body;
  WallTimer timer;
  if (!socket.WriteAll(request).ok()) return out;
  auto status_line = reader.ReadLine();
  if (!status_line.ok()) return out;
  out.ttfb_ms = timer.Millis();
  auto resp = net::ReadHttpResponseAfterStatusLine(&reader, *status_line);
  if (!resp.ok()) return out;
  out.total_ms = timer.Millis();
  out.status = resp->status;
  out.body_bytes = resp->body.size();
  out.ok = resp->status == 200;
  return out;
}

/// Reads one numeric metric value from a Prometheus exposition body.
double MetricValue(const std::string& exposition, const std::string& name) {
  size_t pos = 0;
  while ((pos = exposition.find(name, pos)) != std::string::npos) {
    size_t line_start = exposition.rfind('\n', pos);
    line_start = line_start == std::string::npos ? 0 : line_start + 1;
    if (exposition[line_start] == '#') {  // HELP/TYPE lines
      pos += name.size();
      continue;
    }
    size_t space = exposition.find(' ', pos);
    if (space == std::string::npos) return 0;
    return std::atof(exposition.c_str() + space + 1);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Phase 5: sharded scatter-gather serving, 1 vs 2 vs 4 shards.
// ---------------------------------------------------------------------------

/// One in-process shard scubed: its slice of the demo cube behind a real
/// HTTP server on a loopback port, exactly what a deployment would run.
struct ShardNode {
  query::CubeStore store;
  std::unique_ptr<query::QueryService> service;
  std::unique_ptr<server::ScubedServer> server;
};

struct ShardedResult {
  size_t shards = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
};

/// Partitions the sealed demo cube into `n` shards, serves each from its
/// own in-process scubed, fronts them with a ScatterExecutor behind a
/// router scubed, and drives the cache-busting closed loop through the
/// router. The router is single-flight by design, so the headline number
/// is per-request latency (fan-out + merge), not client-side concurrency.
ShardedResult RunShardedPhase(const cube::CubeView& global, size_t n,
                              size_t clients, double seconds,
                              size_t shard_workers) {
  cluster::PartitionOptions partition_options;
  partition_options.num_shards = n;
  std::vector<cube::SegregationCube> parts =
      cluster::PartitionCube(global, partition_options);

  server::ServerOptions shard_server_options;
  shard_server_options.port = 0;
  shard_server_options.loopback_only = true;
  shard_server_options.num_connection_threads = 4;
  shard_server_options.idle_poll_seconds = 0.1;

  std::vector<std::unique_ptr<ShardNode>> nodes;
  std::vector<cluster::ShardSpec> specs;
  for (size_t i = 0; i < n; ++i) {
    auto node = std::make_unique<ShardNode>();
    node->store.Publish("default", std::move(parts[i]));
    query::ServiceOptions service_options;
    service_options.num_workers = shard_workers;
    service_options.cache_capacity = 0;  // measure execution, not replay
    node->service =
        std::make_unique<query::QueryService>(&node->store, service_options);
    node->server = std::make_unique<server::ScubedServer>(
        node->service.get(), &node->store, shard_server_options);
    Status started = node->server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "shard %zu start: %s\n", i,
                   started.ToString().c_str());
      std::exit(1);
    }
    cluster::ShardSpec spec;
    spec.replicas.push_back(
        cluster::ShardEndpoint{"127.0.0.1", node->server->port()});
    specs.push_back(std::move(spec));
    nodes.push_back(std::move(node));
  }

  cluster::ScatterExecutor scatter(std::move(specs));
  server::ServerOptions router_options = shard_server_options;
  router_options.num_connection_threads = clients * 2;
  server::ScubedServer router(&scatter, router_options);
  Status started = router.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "router start: %s\n", started.ToString().c_str());
    std::exit(1);
  }

  trace::LatencyHistogram hist;
  LoadResult load = RunLoad(router.port(), clients, seconds, 0, &hist,
                            /*cache_bust=*/true);

  router.Stop();
  for (auto& node : nodes) {
    node->server->Stop();
    node->service->Shutdown();
  }

  ShardedResult out;
  out.shards = n;
  out.qps = load.Qps();
  out.p50_ms = hist.Quantile(0.50);
  out.p99_ms = hist.Quantile(0.99);
  out.ok = load.ok;
  out.errors = load.errors;
  return out;
}

// ---------------------------------------------------------------------------
// Phase 6: the reactor front-end under ~10k mostly-idle keep-alive conns.
// ---------------------------------------------------------------------------

/// Raises RLIMIT_NOFILE toward what `want_conns` connections need and
/// returns how many fds the calling process may spend on them (soft
/// limit minus a reserve for the binary's own files, epoll, eventfd and
/// the querier sockets). The herd's client ends live in separate child
/// processes precisely so this budget is per-side, not split two ways.
size_t ConnectionFdBudget(size_t want_conns) {
  struct rlimit lim;
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  const rlim_t reserve = 128;
  const rlim_t needed = static_cast<rlim_t>(want_conns) + reserve;
  if (lim.rlim_cur < needed) {
    struct rlimit raise = lim;
    raise.rlim_cur = needed;
    // Raising the hard cap needs CAP_SYS_RESOURCE; without it fall back
    // to soft = hard.
    raise.rlim_max = std::max(lim.rlim_max, needed);
    if (setrlimit(RLIMIT_NOFILE, &raise) != 0) {
      raise.rlim_max = lim.rlim_max;
      raise.rlim_cur = lim.rlim_max;
      setrlimit(RLIMIT_NOFILE, &raise);  // best effort
    }
    getrlimit(RLIMIT_NOFILE, &lim);
  }
  if (lim.rlim_cur <= reserve) return 0;
  return static_cast<size_t>(lim.rlim_cur - reserve);
}

/// A herd child (fork + exec of this binary with --herd-child): holds its
/// share of the keep-alive connections, reports "held H errors E" on
/// stdout once they are all up, and releases them when its stdin hits
/// EOF. Separate processes because RLIMIT_NOFILE is per-process — with
/// the client ends held elsewhere, the serving process can dedicate its
/// whole fd budget to the server side of 10k+ connections.
struct HerdChild {
  pid_t pid = -1;
  int release_fd = -1;          ///< write end of the child's stdin pipe
  std::FILE* report = nullptr;  ///< read end of the child's stdout
};

HerdChild SpawnHerdChild(uint16_t port, size_t conns) {
  HerdChild out;
  int in_pipe[2];
  int out_pipe[2];
  if (pipe(in_pipe) != 0) return out;
  if (pipe(out_pipe) != 0) {
    close(in_pipe[0]);
    close(in_pipe[1]);
    return out;
  }
  pid_t pid = fork();
  if (pid < 0) {
    close(in_pipe[0]);
    close(in_pipe[1]);
    close(out_pipe[0]);
    close(out_pipe[1]);
    return out;
  }
  if (pid == 0) {
    // The parent's server threads may hold arbitrary locks at the fork
    // instant, so the child keeps to async-signal-safe territory until
    // exec gives it a fresh process image.
    dup2(in_pipe[0], 0);
    dup2(out_pipe[1], 1);
    close(in_pipe[0]);
    close(in_pipe[1]);
    close(out_pipe[0]);
    close(out_pipe[1]);
    char port_arg[16];
    char conns_arg[32];
    std::snprintf(port_arg, sizeof(port_arg), "%u", port);
    std::snprintf(conns_arg, sizeof(conns_arg), "%zu", conns);
    execl("/proc/self/exe", "bench_server", "--herd-child", port_arg,
          conns_arg, static_cast<char*>(nullptr));
    _exit(127);
  }
  close(in_pipe[0]);
  close(out_pipe[1]);
  out.pid = pid;
  out.release_fd = in_pipe[1];
  out.report = fdopen(out_pipe[0], "r");
  return out;
}

/// Child-mode body (`bench_server --herd-child PORT CONNS`).
int RunHerdChild(uint16_t port, size_t conns) {
  conns = std::min(conns, ConnectionFdBudget(conns));
  std::vector<net::Socket> herd;
  herd.reserve(conns);
  uint64_t errors = 0;
  while (herd.size() < conns) {
    auto connected = net::Connect("127.0.0.1", port);
    if (!connected.ok()) break;  // EMFILE or backlog: hold what we have
    herd.push_back(std::move(connected).value());
  }
  // A spot-checked HTTP round so the herd has actually been accepted,
  // parsed and answered (back to idle) — not just SYNs in a backlog.
  const size_t step = std::max<size_t>(1, herd.size() / 16);
  for (size_t i = 0; i < herd.size(); i += step) {
    net::BufferedReader reader(&herd[i]);
    auto resp = net::RoundTrip(&herd[i], &reader, "GET", "/healthz");
    if (!resp.ok() || resp->status != 200) ++errors;
  }
  std::printf("held %zu errors %llu\n", herd.size(),
              static_cast<unsigned long long>(errors));
  std::fflush(stdout);
  char b;
  while (read(0, &b, 1) > 0) {
  }  // parent closes our stdin to release the herd
  return 0;
}

struct IdleConnResult {
  size_t target = 0;
  size_t held = 0;           ///< connections actually established and held
  double open_gauge = 0;     ///< scubed_open_connections while held
  double qps = 0;            ///< closed-loop querier under the idle herd
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
};

/// Opens `target` keep-alive connections against a reactor scubed (scaled
/// down to the fd budget), leaves them idle, and drives the cache-busting
/// closed loop through the same server. The point of the phase: the
/// dispatch pool stays fixed while the connection count grows 1000x, and
/// the querier's tail latency does not.
IdleConnResult RunIdleConnPhase(cube::SegregationCube cube, size_t target,
                                size_t clients, double seconds,
                                size_t workers) {
  IdleConnResult out;
  out.target = target;

  query::CubeStore store;
  store.Publish("default", std::move(cube));
  query::ServiceOptions service_options;
  service_options.num_workers = workers;
  service_options.cache_capacity = 0;  // measure execution, not replay
  query::QueryService service(&store, service_options);

  server::ServerOptions options;
  options.port = 0;
  options.loopback_only = true;
  options.frontend = server::Frontend::kReactor;
  options.num_connection_threads = workers;  // fixed pool — the claim
  options.idle_timeout_seconds = 600;        // the herd must outlive the run
  server::ScubedServer server(&service, &store, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "idle-conn server start: %s\n",
                 started.ToString().c_str());
    out.errors = 1;
    return out;
  }

  const size_t budget = ConnectionFdBudget(target);
  const size_t want = std::min(target, budget);
  if (want < target) {
    std::printf("  fd budget allows %zu of %zu server-side connections "
                "(RLIMIT_NOFILE)\n",
                want, target);
  }
  // The herd's client ends live in child processes (per-process fd
  // limits); spawned and confirmed one at a time so their connect storms
  // do not trample each other's accept backlog.
  const size_t kChildren = 4;
  std::vector<HerdChild> children;
  for (size_t c = 0; c < kChildren; ++c) {
    const size_t share = want / kChildren + (c < want % kChildren ? 1 : 0);
    if (share == 0) continue;
    HerdChild child = SpawnHerdChild(server.port(), share);
    if (child.pid < 0) continue;
    size_t held = 0;
    unsigned long long probe_errors = 0;
    if (child.report != nullptr &&
        std::fscanf(child.report, "held %zu errors %llu", &held,
                    &probe_errors) == 2) {
      out.held += held;
      out.errors += probe_errors;
    }
    children.push_back(child);
  }

  trace::LatencyHistogram hist;
  LoadResult load = RunLoad(server.port(), clients, seconds, 0, &hist,
                            /*cache_bust=*/true);

  // Scrape the gauge while the herd is still connected.
  {
    auto connected = net::Connect("127.0.0.1", server.port());
    if (connected.ok()) {
      net::Socket socket = std::move(connected).value();
      net::BufferedReader reader(&socket);
      auto resp = net::RoundTrip(&socket, &reader, "GET", "/metrics");
      if (resp.ok()) {
        out.open_gauge = MetricValue(resp->body, "scubed_open_connections");
      }
    }
  }

  for (HerdChild& child : children) close(child.release_fd);
  for (HerdChild& child : children) {
    if (child.report != nullptr) std::fclose(child.report);
    int wstatus = 0;
    waitpid(child.pid, &wstatus, 0);
  }
  server.Stop();
  service.Shutdown();

  out.qps = load.Qps();
  out.p50_ms = hist.Quantile(0.50);
  out.p99_ms = hist.Quantile(0.99);
  out.ok = load.ok;
  out.errors += load.errors;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::strcmp(argv[1], "--herd-child") == 0) {
    return RunHerdChild(static_cast<uint16_t>(std::atoi(argv[2])),
                        static_cast<size_t>(std::atol(argv[3])));
  }
  double scale = 0.002;
  double seconds = 3.0;
  size_t clients = 4;
  size_t workers = 4;
  double deadline_ms = 250;
  // The streaming phase keeps its full width under --quick: the point is
  // that a 100k-row answer streams in O(1) buffer, and the synthetic cube
  // builds in well under a second.
  size_t rows = 100000;
  size_t idle_conns = 10000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--idle-conns") == 0 && i + 1 < argc) {
      idle_conns = static_cast<size_t>(std::atol(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (rows < 100) rows = 100;
  if (quick) {
    seconds = 0.6;
    clients = 2;
    scale = 0.0015;
    idle_conns = std::min<size_t>(idle_conns, 1500);
  }

  std::printf("building demo cubes (scale %g)...\n", scale);
  cube::SegregationCube cube_v1 = BuildDemoCube(scale, 0);
  cube::SegregationCube cube_v2 = BuildDemoCube(scale, 1);

  query::CubeStore store;
  query::ServiceOptions service_options;
  service_options.num_workers = workers;
  service_options.cache_capacity = 512;
  service_options.max_pending = 2 * workers;  // shallow: bounded latency
  service_options.default_deadline_ms = deadline_ms;
  service_options.warm_top_n = 8;
  query::QueryService service(&store, service_options);
  service.PublishAndWarm("default", std::move(cube_v1));

  server::ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  server_options.loopback_only = true;
  // Connection capacity must exceed worker + queue capacity, so that
  // query-level admission (not the connection pool) is what saturates.
  server_options.num_connection_threads = clients * 16;
  server_options.max_queued_connections = clients * 16;
  server::ScubedServer server(&service, &store, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("scubed on 127.0.0.1:%u — %zu workers, queue bound %zu, "
              "deadline %.0f ms\n\n",
              server.port(), workers, service_options.max_pending,
              deadline_ms);

  // --- phase 1: closed loop (hot mix, then cache-busting capacity probe) --
  std::printf("[closed loop, hot mix] %zu clients, %.1f s\n", clients,
              seconds);
  trace::LatencyHistogram hot_hist;
  LoadResult hot = RunLoad(server.port(), clients, seconds, 0, &hot_hist);
  std::printf("  %llu ok, %llu shed, %llu errors | %.0f qps | "
              "p50 %.2f ms, p99 %.2f ms (cache-served)\n",
              static_cast<unsigned long long>(hot.ok),
              static_cast<unsigned long long>(hot.shed),
              static_cast<unsigned long long>(hot.errors), hot.Qps(),
              hot_hist.Quantile(0.50), hot_hist.Quantile(0.99));

  // The capacity probe must *saturate* the workers, not measure one
  // connection's round-trip latency: enough concurrent closed-loop
  // clients that the service rate, not the RTT, is the limit.
  size_t probe_clients = clients * 8;
  std::printf("[closed loop, cache-busting] %zu clients, %.1f s\n",
              probe_clients, seconds);
  trace::LatencyHistogram closed_hist;
  LoadResult closed = RunLoad(server.port(), probe_clients, seconds, 0,
                              &closed_hist, /*cache_bust=*/true);
  double capacity = closed.Qps();
  std::printf("  %llu ok, %llu shed, %llu errors | %.0f qps sustained | "
              "p50 %.2f ms, p99 %.2f ms (executed)\n\n",
              static_cast<unsigned long long>(closed.ok),
              static_cast<unsigned long long>(closed.shed),
              static_cast<unsigned long long>(closed.errors), capacity,
              closed_hist.Quantile(0.50), closed_hist.Quantile(0.99));

  // --- phase 2: open loop at 2x capacity ----------------------------------
  double offered = 2.0 * capacity;
  size_t open_clients = clients * 16;  // enough senders to hold the rate
  std::printf("[open loop] offering %.0f qps (2x sustained capacity), "
              "%zu senders, %.1f s\n", offered, open_clients, seconds);
  trace::LatencyHistogram open_hist;
  LoadResult open = RunLoad(server.port(), open_clients, seconds, offered,
                            &open_hist, /*cache_bust=*/true);
  uint64_t answered = open.ok + open.shed;
  double shed_rate = answered == 0
                         ? 0.0
                         : static_cast<double>(open.shed) /
                               static_cast<double>(answered);
  double open_p99 = open_hist.Quantile(0.99);
  std::printf("  %llu ok, %llu shed (%.0f%%), %llu deadline-expired, "
              "%llu errors\n",
              static_cast<unsigned long long>(open.ok),
              static_cast<unsigned long long>(open.shed), 100 * shed_rate,
              static_cast<unsigned long long>(open.expired),
              static_cast<unsigned long long>(open.errors));
  std::printf("  accepted p99 %.2f ms (deadline %.0f ms): overload sheds "
              "with 503 instead of queueing unboundedly\n\n",
              open_p99, deadline_ms);

  // --- phase 3: publish + warm during load --------------------------------
  std::printf("[publish during load] publishing v2 mid-load with cache "
              "warming\n");
  auto before_stats = service.cache_stats();
  std::atomic<bool> publish_done{false};
  query::QueryService::PublishInfo publish_info;
  std::thread publisher([&] {
    // Let the load warm the cache first, then publish.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds * 0.4));
    publish_info = service.PublishAndWarm("default", std::move(cube_v2));
    publish_done.store(true);
  });
  trace::LatencyHistogram publish_hist;
  LoadResult publish_load =
      RunLoad(server.port(), clients, seconds, capacity * 0.8, &publish_hist);
  publisher.join();
  auto after_stats = service.cache_stats();
  query::ResultCache::Stats window;
  window.hits = after_stats.hits - before_stats.hits;
  window.misses = after_stats.misses - before_stats.misses;
  std::printf("  published v%llu, warmed %zu entries | load: %llu ok, "
              "%llu errors | window hit rate %.0f%%\n",
              static_cast<unsigned long long>(publish_info.version),
              publish_info.warmed,
              static_cast<unsigned long long>(publish_load.ok),
              static_cast<unsigned long long>(publish_load.errors),
              100 * HitRate(window));
  bool warmed_ok = publish_info.version == 2 && publish_info.warmed > 0;
  std::printf("  cache warming %s: the hottest texts were re-executed "
              "against v2 at publish time\n\n",
              warmed_ok ? "worked" : "FAILED");

  server.Stop();
  service.Shutdown();

  // --- phase 4: streamed vs buffered wide answer --------------------------
  std::printf("[streaming] building wide cubes (%zu and %zu rows)...\n",
              rows, rows / 10);
  query::CubeStore wide_store;
  query::ServiceOptions wide_options;
  wide_options.num_workers = 2;
  wide_options.cache_capacity = 0;  // measure execution, not cache replay
  query::QueryService wide_service(&wide_store, wide_options);
  wide_store.Publish("default", BuildWideCube(rows));
  wide_store.Publish("small", BuildWideCube(rows / 10));

  server::ServerOptions wide_server_options;
  wide_server_options.port = 0;
  wide_server_options.loopback_only = true;
  server::ScubedServer wide_server(&wide_service, &wide_store,
                                   wide_server_options);
  started = wide_server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  const uint16_t wide_port = wide_server.port();
  const std::string wide_query = "SLICE sa=group=minority";

  auto read_peak = [&](const char* gauge) -> double {
    auto connected = net::Connect("127.0.0.1", wide_port);
    if (!connected.ok()) return -1;
    net::Socket socket = std::move(connected).value();
    net::BufferedReader reader(&socket);
    auto resp = net::RoundTrip(&socket, &reader, "GET", "/metrics");
    if (!resp.ok()) return -1;
    return MetricValue(resp->body, gauge);
  };

  // Stream the small answer first: the streamed peak after it is the
  // chunk flush bound. Streaming the 10x answer next must not move it —
  // that is the O(1) claim, measured.
  TimedResponse small_stream = TimedRequest(
      wide_port, "/query?stream=1", wide_query + " FROM small");
  double peak_small = read_peak("scubed_streamed_buffer_peak_bytes");
  TimedResponse streamed =
      TimedRequest(wide_port, "/query?stream=1", wide_query);
  double peak_streamed = read_peak("scubed_streamed_buffer_peak_bytes");
  TimedResponse buffered = TimedRequest(wide_port, "/query", wide_query);
  double peak_buffered = read_peak("scubed_buffered_body_peak_bytes");
  wide_server.Stop();
  wide_service.Shutdown();

  std::printf("  streamed  %zu rows: TTFB %.2f ms, total %.2f ms, "
              "%zu body bytes, peak buffer %.0f B\n",
              rows, streamed.ttfb_ms, streamed.total_ms,
              streamed.body_bytes, peak_streamed);
  std::printf("  streamed  %zu rows: HTTP %d, peak buffer %.0f B "
              "(unchanged by 10x more rows: O(1))\n",
              rows / 10, small_stream.status, peak_small);
  std::printf("  buffered  %zu rows: TTFB %.2f ms, total %.2f ms, "
              "%zu body bytes, peak buffer %.0f B\n",
              rows, buffered.ttfb_ms, buffered.total_ms,
              buffered.body_bytes, peak_buffered);
  std::printf("  TTFB streamed/buffered: %.2f/%.2f ms | peak buffer "
              "ratio %.0fx\n\n",
              streamed.ttfb_ms, buffered.ttfb_ms,
              peak_streamed > 0 ? peak_buffered / peak_streamed : 0);

  // The streamed peak is bounded by the chunk flush threshold (plus one
  // coalesced write), independent of the row count; the buffered peak is
  // the whole serialised body.
  const double flush_bound = 2.0 * net::ChunkedWriter::kDefaultFlushBytes;
  bool streaming_ok =
      small_stream.ok && streamed.ok && buffered.ok &&
      streamed.body_bytes > buffered.body_bytes / 2 &&  // same rows served
      peak_streamed > 0 && peak_streamed <= flush_bound &&
      std::abs(peak_streamed - peak_small) <= 4096 &&
      peak_buffered >= 0.5 * static_cast<double>(buffered.body_bytes);
  std::printf("  streaming O(1) buffering %s\n\n",
              streaming_ok ? "holds" : "FAILED");

  // --- phase 5: sharded scatter-gather, 1 vs 2 vs 4 shards ----------------
  std::printf("[sharded] partitioning the demo cube across 1/2/4 shard "
              "servers behind a scatter router\n");
  cube::CubeView global_view = BuildDemoCube(scale, 0).Seal(2);
  std::vector<ShardedResult> sharded;
  for (size_t n : {1u, 2u, 4u}) {
    sharded.push_back(
        RunShardedPhase(global_view, n, clients, seconds, workers));
    const ShardedResult& r = sharded.back();
    std::printf("  %zu shard%s: %llu ok, %llu errors | %.0f qps | "
                "p50 %.2f ms, p99 %.2f ms\n",
                r.shards, r.shards == 1 ? " " : "s",
                static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.errors), r.qps, r.p50_ms,
                r.p99_ms);
  }
  bool sharded_ok = true;
  for (const ShardedResult& r : sharded) {
    sharded_ok = sharded_ok && r.ok > 0 && r.errors == 0;
  }
  std::printf("  sharded serving %s: every topology answered the full "
              "cache-busting mix without errors\n",
              sharded_ok ? "worked" : "FAILED");
  std::printf("  (per-request fan-out parallelism needs spare cores; on a "
              "small container the curve can be flat or inverted while the "
              "answers stay byte-identical)\n\n");

  // --- phase 6: reactor front-end under a mostly-idle keep-alive herd -----
  std::printf("[idle connections] reactor front-end, %zu keep-alive "
              "connections held idle, %zu dispatch threads\n",
              idle_conns, workers);
  IdleConnResult idle = RunIdleConnPhase(BuildDemoCube(scale, 0), idle_conns,
                                         clients, seconds, workers);
  std::printf("  held %zu/%zu connections (open gauge %.0f) | querier "
              "%llu ok, %llu errors | %.0f qps | p50 %.2f ms, "
              "p99 %.2f ms\n",
              idle.held, idle.target, idle.open_gauge,
              static_cast<unsigned long long>(idle.ok),
              static_cast<unsigned long long>(idle.errors), idle.qps,
              idle.p50_ms, idle.p99_ms);
  // The herd must be held by the reactor (the gauge sees it) and must not
  // break the querier. The fd budget may scale the target down on small
  // containers; "worked" means everything we could open stayed open.
  bool idle_ok = idle.held > 0 && idle.ok > 0 && idle.errors == 0 &&
                 idle.open_gauge >= static_cast<double>(idle.held);
  std::printf("  idle-herd serving %s: a fixed pool held %zu connections "
              "while queries kept flowing\n\n",
              idle_ok ? "worked" : "FAILED", idle.held);

  // --- trajectory record ---------------------------------------------------
  {
    std::FILE* json = std::fopen("BENCH_server.json", "w");
    if (json != nullptr) {
      // Per-phase latency quantiles, all read from the same fixed-bucket
      // histogram the server exports on /metrics (interpolated, not exact
      // order statistics — consistent with what an operator would compute
      // from the scraped buckets).
      auto quantiles = [](const trace::LatencyHistogram& h) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f",
                      h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99));
        return std::string(buf);
      };
      std::fprintf(json, "{\n");
      std::fprintf(json,
                   "  \"hot_loop\": {\"qps\": %.1f, %s, \"ok\": %llu},\n",
                   hot.Qps(), quantiles(hot_hist).c_str(),
                   static_cast<unsigned long long>(hot.ok));
      std::fprintf(json,
                   "  \"closed_loop\": {\"qps\": %.1f, %s, "
                   "\"ok\": %llu, \"errors\": %llu},\n",
                   capacity, quantiles(closed_hist).c_str(),
                   static_cast<unsigned long long>(closed.ok),
                   static_cast<unsigned long long>(closed.errors));
      std::fprintf(json,
                   "  \"open_loop_2x\": {\"offered_qps\": %.1f, "
                   "\"shed_rate\": %.4f, \"accepted\": {%s}},\n",
                   offered, shed_rate, quantiles(open_hist).c_str());
      std::fprintf(json,
                   "  \"publish_under_load\": {\"version\": %llu, "
                   "\"warmed\": %zu, \"window_hit_rate\": %.4f, %s},\n",
                   static_cast<unsigned long long>(publish_info.version),
                   publish_info.warmed, 100 * HitRate(window) / 100.0,
                   quantiles(publish_hist).c_str());
      std::fprintf(json, "  \"streaming\": {\n");
      std::fprintf(json, "    \"rows\": %zu,\n", rows);
      std::fprintf(json,
                   "    \"streamed\": {\"ttfb_ms\": %.3f, \"total_ms\": "
                   "%.3f, \"body_bytes\": %zu, "
                   "\"peak_response_buffer_bytes\": %.0f},\n",
                   streamed.ttfb_ms, streamed.total_ms, streamed.body_bytes,
                   peak_streamed);
      std::fprintf(json,
                   "    \"streamed_tenth\": {\"rows\": %zu, "
                   "\"peak_response_buffer_bytes\": %.0f},\n",
                   rows / 10, peak_small);
      std::fprintf(json,
                   "    \"buffered\": {\"ttfb_ms\": %.3f, \"total_ms\": "
                   "%.3f, \"body_bytes\": %zu, "
                   "\"peak_response_buffer_bytes\": %.0f},\n",
                   buffered.ttfb_ms, buffered.total_ms, buffered.body_bytes,
                   peak_buffered);
      std::fprintf(json, "    \"o1_buffering_holds\": %s\n",
                   streaming_ok ? "true" : "false");
      std::fprintf(json, "  },\n");
      std::fprintf(json, "  \"sharded\": [\n");
      for (size_t i = 0; i < sharded.size(); ++i) {
        const ShardedResult& r = sharded[i];
        std::fprintf(json,
                     "    {\"shards\": %zu, \"qps\": %.1f, \"p50_ms\": %.3f, "
                     "\"p99_ms\": %.3f, \"ok\": %llu, \"errors\": %llu}%s\n",
                     r.shards, r.qps, r.p50_ms, r.p99_ms,
                     static_cast<unsigned long long>(r.ok),
                     static_cast<unsigned long long>(r.errors),
                     i + 1 < sharded.size() ? "," : "");
      }
      std::fprintf(json, "  ],\n");
      std::fprintf(json,
                   "  \"idle_connections\": {\"target\": %zu, \"held\": %zu, "
                   "\"open_gauge\": %.0f, \"qps\": %.1f, \"p50_ms\": %.3f, "
                   "\"p99_ms\": %.3f, \"ok\": %llu, \"errors\": %llu}\n",
                   idle.target, idle.held, idle.open_gauge, idle.qps,
                   idle.p50_ms, idle.p99_ms,
                   static_cast<unsigned long long>(idle.ok),
                   static_cast<unsigned long long>(idle.errors));
      std::fprintf(json, "}\n");
      std::fclose(json);
      std::printf("wrote BENCH_server.json\n");
    }
  }

  bool ok = closed.ok > 0 && closed.errors == 0 && warmed_ok &&
            publish_load.ok > 0 && streaming_ok && sharded_ok && idle_ok;
  std::printf("bench_server %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
