// bench_server: loopback load against the scubed serving front-end.
//
// Three phases over the demo cube, all through real HTTP on 127.0.0.1:
//   1. closed loop   N keep-alive clients, back-to-back requests ->
//                    sustained qps, p50/p99 latency (the capacity probe)
//   2. open loop 2x  requests offered at twice the measured capacity ->
//                    shed rate (503s), p99 of *accepted* requests, which
//                    stays bounded by the deadline instead of queueing
//   3. publish       a new cube version is published mid-load with
//                    cache warming -> cache hit rate before/after, and
//                    every response stays well-formed
//
// Run:  ./bench_server [--quick] [--scale S] [--workers N] [--seconds T]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "datagen/scenarios.h"
#include "net/http.h"
#include "net/socket.h"
#include "query/cube_store.h"
#include "query/service.h"
#include "scube/pipeline.h"
#include "server/server.h"

using namespace scube;

namespace {

struct LoadResult {
  uint64_t ok = 0;        ///< HTTP 200
  uint64_t shed = 0;      ///< HTTP 503
  uint64_t expired = 0;   ///< body contained a DeadlineExceeded code
  uint64_t errors = 0;    ///< transport or unexpected status
  std::vector<double> latencies_ms;  ///< of HTTP-200 responses
  double seconds = 0;

  double Qps() const {
    return seconds > 0 ? static_cast<double>(ok) / seconds : 0;
  }
  void Merge(const LoadResult& other) {
    ok += other.ok;
    shed += other.shed;
    expired += other.expired;
    errors += other.errors;
    latencies_ms.insert(latencies_ms.end(), other.latencies_ms.begin(),
                        other.latencies_ms.end());
  }
};

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0;
  std::sort(values->begin(), values->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values->size()));
  if (idx >= values->size()) idx = values->size() - 1;
  return (*values)[idx];
}

const std::vector<std::string>& QueryMix() {
  static const std::vector<std::string> mix = {
      "TOPK 5 BY dissimilarity WHERE T >= 30",
      "SLICE sa=gender=F",
      "DICE sa=gender=F WHERE T >= 50",
      "DRILLDOWN sa=gender=F",
      "TOPK 3 BY gini",
      "SURPRISES BY dissimilarity MINDELTA 0.05 LIMIT 5",
      "ROLLUP sa=gender=F | ca=residence_region=north",
      "TOPK 5 BY dissimilarity WHERE T >= 30",  // repeat: cache food
  };
  return mix;
}

/// Cache-busting variant stream: distinct canonical texts, so every
/// request costs real executor work instead of a cache hit. Every 16th
/// is a SURPRISES scan to keep the workers honestly busy.
std::string CacheBustQuery(size_t n) {
  if (n % 16 == 0) {
    return "SURPRISES BY dissimilarity MINDELTA 0." +
           std::to_string(10 + n % 80) + " LIMIT 5";
  }
  return "TOPK 5 BY dissimilarity WHERE T >= " +
         std::to_string(30 + n % 997) + " AND M >= " +
         std::to_string(1 + n % 13);
}

/// One client worker: issues requests until the deadline; `pace_s` > 0
/// turns the closed loop into an open loop with that inter-send gap.
LoadResult RunClient(uint16_t port, double seconds, double pace_s,
                     size_t offset, bool cache_bust) {
  LoadResult out;
  auto connected = net::Connect("127.0.0.1", port);
  if (!connected.ok()) {
    out.errors = 1;
    return out;
  }
  net::Socket socket = std::move(connected).value();
  socket.SetNoDelay();
  net::BufferedReader reader(&socket);

  const auto& mix = QueryMix();
  WallTimer total;
  size_t i = offset;
  auto next_send = std::chrono::steady_clock::now();
  while (total.Seconds() < seconds) {
    if (pace_s > 0) {
      std::this_thread::sleep_until(next_send);
      next_send += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(pace_s));
    }
    const std::string query =
        cache_bust ? CacheBustQuery(i++ * 131 + offset)
                   : mix[i++ % mix.size()];
    WallTimer latency;
    auto resp = net::RoundTrip(&socket, &reader, "POST", "/query", query);
    if (!resp.ok()) {
      // The server may close a kept-alive connection during shutdown or
      // shedding; reconnect once and retry the slot.
      auto again = net::Connect("127.0.0.1", port);
      if (!again.ok()) {
        ++out.errors;
        break;
      }
      socket = std::move(again).value();
      socket.SetNoDelay();
      reader = net::BufferedReader(&socket);
      continue;
    }
    if (resp->status == 200) {
      ++out.ok;
      out.latencies_ms.push_back(latency.Millis());
      if (resp->body.find("\"DeadlineExceeded\"") != std::string::npos) {
        ++out.expired;
      }
    } else if (resp->status == 503) {
      ++out.shed;
    } else {
      ++out.errors;
    }
  }
  out.seconds = total.Seconds();
  return out;
}

LoadResult RunLoad(uint16_t port, size_t clients, double seconds,
                   double offered_qps, bool cache_bust = false) {
  std::vector<LoadResult> results(clients);
  std::vector<std::thread> threads;
  double pace_s =
      offered_qps > 0 ? static_cast<double>(clients) / offered_qps : 0;
  WallTimer timer;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      results[c] = RunClient(port, seconds, pace_s, c, cache_bust);
    });
  }
  for (auto& t : threads) t.join();
  LoadResult merged;
  for (auto& r : results) merged.Merge(r);
  merged.seconds = timer.Seconds();
  return merged;
}

cube::SegregationCube BuildDemoCube(double scale, uint32_t seed_offset) {
  auto scenario = datagen::GenerateScenario(datagen::ItalianConfig(scale));
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    std::exit(1);
  }
  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupClusters;
  config.method = pipeline::ClusterMethod::kThreshold;
  config.threshold.min_weight = 2.0;
  config.cube.min_support = 20 + seed_offset;  // v2 differs slightly
  config.cube.mode = fpm::MineMode::kClosed;
  config.cube.max_sa_items = 2;
  config.cube.max_ca_items = 1;
  auto result = pipeline::RunPipeline(scenario->inputs, config);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result->cube);
}

double HitRate(const query::ResultCache::Stats& stats) {
  uint64_t total = stats.hits + stats.misses;
  return total == 0 ? 0.0
                    : static_cast<double>(stats.hits) /
                          static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.002;
  double seconds = 3.0;
  size_t clients = 4;
  size_t workers = 4;
  double deadline_ms = 250;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<size_t>(std::atol(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (quick) {
    seconds = 0.6;
    clients = 2;
    scale = 0.0015;
  }

  std::printf("building demo cubes (scale %g)...\n", scale);
  cube::SegregationCube cube_v1 = BuildDemoCube(scale, 0);
  cube::SegregationCube cube_v2 = BuildDemoCube(scale, 1);

  query::CubeStore store;
  query::ServiceOptions service_options;
  service_options.num_workers = workers;
  service_options.cache_capacity = 512;
  service_options.max_pending = 2 * workers;  // shallow: bounded latency
  service_options.default_deadline_ms = deadline_ms;
  service_options.warm_top_n = 8;
  query::QueryService service(&store, service_options);
  service.PublishAndWarm("default", std::move(cube_v1));

  server::ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  server_options.loopback_only = true;
  // Connection capacity must exceed worker + queue capacity, so that
  // query-level admission (not the connection pool) is what saturates.
  server_options.num_connection_threads = clients * 16;
  server_options.max_queued_connections = clients * 16;
  server::ScubedServer server(&service, &store, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("scubed on 127.0.0.1:%u — %zu workers, queue bound %zu, "
              "deadline %.0f ms\n\n",
              server.port(), workers, service_options.max_pending,
              deadline_ms);

  // --- phase 1: closed loop (hot mix, then cache-busting capacity probe) --
  std::printf("[closed loop, hot mix] %zu clients, %.1f s\n", clients,
              seconds);
  LoadResult hot = RunLoad(server.port(), clients, seconds, 0);
  std::printf("  %llu ok, %llu shed, %llu errors | %.0f qps | "
              "p50 %.2f ms, p99 %.2f ms (cache-served)\n",
              static_cast<unsigned long long>(hot.ok),
              static_cast<unsigned long long>(hot.shed),
              static_cast<unsigned long long>(hot.errors), hot.Qps(),
              Percentile(&hot.latencies_ms, 0.50),
              Percentile(&hot.latencies_ms, 0.99));

  // The capacity probe must *saturate* the workers, not measure one
  // connection's round-trip latency: enough concurrent closed-loop
  // clients that the service rate, not the RTT, is the limit.
  size_t probe_clients = clients * 8;
  std::printf("[closed loop, cache-busting] %zu clients, %.1f s\n",
              probe_clients, seconds);
  LoadResult closed = RunLoad(server.port(), probe_clients, seconds, 0,
                              /*cache_bust=*/true);
  double capacity = closed.Qps();
  std::printf("  %llu ok, %llu shed, %llu errors | %.0f qps sustained | "
              "p50 %.2f ms, p99 %.2f ms (executed)\n\n",
              static_cast<unsigned long long>(closed.ok),
              static_cast<unsigned long long>(closed.shed),
              static_cast<unsigned long long>(closed.errors), capacity,
              Percentile(&closed.latencies_ms, 0.50),
              Percentile(&closed.latencies_ms, 0.99));

  // --- phase 2: open loop at 2x capacity ----------------------------------
  double offered = 2.0 * capacity;
  size_t open_clients = clients * 16;  // enough senders to hold the rate
  std::printf("[open loop] offering %.0f qps (2x sustained capacity), "
              "%zu senders, %.1f s\n", offered, open_clients, seconds);
  LoadResult open = RunLoad(server.port(), open_clients, seconds, offered,
                            /*cache_bust=*/true);
  uint64_t answered = open.ok + open.shed;
  double shed_rate = answered == 0
                         ? 0.0
                         : static_cast<double>(open.shed) /
                               static_cast<double>(answered);
  double open_p99 = Percentile(&open.latencies_ms, 0.99);
  std::printf("  %llu ok, %llu shed (%.0f%%), %llu deadline-expired, "
              "%llu errors\n",
              static_cast<unsigned long long>(open.ok),
              static_cast<unsigned long long>(open.shed), 100 * shed_rate,
              static_cast<unsigned long long>(open.expired),
              static_cast<unsigned long long>(open.errors));
  std::printf("  accepted p99 %.2f ms (deadline %.0f ms): overload sheds "
              "with 503 instead of queueing unboundedly\n\n",
              open_p99, deadline_ms);

  // --- phase 3: publish + warm during load --------------------------------
  std::printf("[publish during load] publishing v2 mid-load with cache "
              "warming\n");
  auto before_stats = service.cache_stats();
  std::atomic<bool> publish_done{false};
  query::QueryService::PublishInfo publish_info;
  std::thread publisher([&] {
    // Let the load warm the cache first, then publish.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds * 0.4));
    publish_info = service.PublishAndWarm("default", std::move(cube_v2));
    publish_done.store(true);
  });
  LoadResult publish_load =
      RunLoad(server.port(), clients, seconds, capacity * 0.8);
  publisher.join();
  auto after_stats = service.cache_stats();
  query::ResultCache::Stats window;
  window.hits = after_stats.hits - before_stats.hits;
  window.misses = after_stats.misses - before_stats.misses;
  std::printf("  published v%llu, warmed %zu entries | load: %llu ok, "
              "%llu errors | window hit rate %.0f%%\n",
              static_cast<unsigned long long>(publish_info.version),
              publish_info.warmed,
              static_cast<unsigned long long>(publish_load.ok),
              static_cast<unsigned long long>(publish_load.errors),
              100 * HitRate(window));
  bool warmed_ok = publish_info.version == 2 && publish_info.warmed > 0;
  std::printf("  cache warming %s: the hottest texts were re-executed "
              "against v2 at publish time\n\n",
              warmed_ok ? "worked" : "FAILED");

  server.Stop();
  service.Shutdown();

  bool ok = closed.ok > 0 && closed.errors == 0 && warmed_ok &&
            publish_load.ok > 0;
  std::printf("bench_server %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
