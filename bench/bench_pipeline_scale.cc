// SCALE: the §4 claim that SCube handles the largest datasets in the
// segregation literature (IT: 3.6M directors / 2.15M companies). This bench
// runs the full pipeline at increasing scale factors and reports per-stage
// wall-clock, so the scaling trend toward the paper's sizes is visible.

#include <cstdio>

#include "common/string_util.h"
#include "datagen/scenarios.h"
#include "scube/pipeline.h"

using namespace scube;

int main() {
  std::printf("SCALE: full pipeline (projection -> threshold clustering -> "
              "join -> closed-itemset cube) vs registry size\n\n");
  std::printf("%-8s %10s %10s %10s | %9s %9s %9s %9s | %8s\n", "scale",
              "directors", "companies", "seats", "project", "cluster",
              "join", "cube", "cells");

  for (double scale : {0.0005, 0.001, 0.002, 0.004}) {
    auto scenario =
        datagen::GenerateScenario(datagen::ItalianConfig(scale));
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
      return 1;
    }
    pipeline::PipelineConfig config;
    config.unit_source = pipeline::UnitSource::kGroupClusters;
    config.method = pipeline::ClusterMethod::kThreshold;
    config.threshold.min_weight = 2.0;
    config.cube.min_support_fraction = 0.002;
    config.cube.mode = fpm::MineMode::kClosed;
    config.cube.max_sa_items = 2;
    config.cube.max_ca_items = 1;
    auto result = pipeline::RunPipeline(scenario->inputs, config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    double stage_secs[4] = {0, 0, 0, 0};
    int i = 0;
    for (const auto& [name, secs] : result->timings.stages()) {
      if (i < 4) stage_secs[i++] = secs;
    }
    std::printf("%-8.4f %10zu %10zu %10zu | %8.3fs %8.3fs %8.3fs %8.3fs "
                "| %8zu\n",
                scale, scenario->inputs.individuals.NumRows(),
                scenario->inputs.groups.NumRows(),
                scenario->inputs.membership.NumMemberships(), stage_secs[0],
                stage_secs[1], stage_secs[2], stage_secs[3],
                result->cube.NumCells());
  }
  std::printf("\nShape check (§3/§4): every stage grows roughly linearly in "
              "registry size at fixed relative support; the cube stage "
              "dominates, which is why SCube mines *closed* itemsets.\n");
  return 0;
}
