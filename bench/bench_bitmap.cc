// EFF-BITMAP: what the EWAH substrate buys (the JavaEWAH substitution).
// Compressed-bitmap intersection/union/cardinality vs a plain sorted-vector
// set intersection, across cover densities; compressed size is reported as
// a counter. Expected shape: EWAH wins on sparse and on clustered covers
// (run compression), and stays competitive on dense ones.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "common/ewah.h"
#include "common/random.h"

namespace {

using namespace scube;

constexpr uint64_t kUniverse = 1 << 20;  // ~1M rows

std::vector<uint64_t> RandomIndices(double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out;
  for (uint64_t i = 0; i < kUniverse; ++i) {
    if (rng.NextBool(density)) out.push_back(i);
  }
  return out;
}

// density as range(0) in tenths of a percent: 1 -> 0.001, 100 -> 0.1.
double DensityOf(const benchmark::State& state) {
  return static_cast<double>(state.range(0)) / 1000.0;
}

void BM_EwahAnd(benchmark::State& state) {
  double density = DensityOf(state);
  auto a = EwahBitmap::FromIndices(RandomIndices(density, 1));
  auto b = EwahBitmap::FromIndices(RandomIndices(density, 2));
  uint64_t card = 0;
  for (auto _ : state) {
    EwahBitmap c = a.And(b);
    card = c.Cardinality();
    benchmark::DoNotOptimize(c);
  }
  state.counters["result_bits"] = static_cast<double>(card);
  state.counters["bytes_a"] = static_cast<double>(a.SizeInBytes());
}
BENCHMARK(BM_EwahAnd)->Arg(1)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

void BM_EwahAndCardinality(benchmark::State& state) {
  double density = DensityOf(state);
  auto a = EwahBitmap::FromIndices(RandomIndices(density, 1));
  auto b = EwahBitmap::FromIndices(RandomIndices(density, 2));
  for (auto _ : state) {
    uint64_t card = a.AndCardinality(b);
    benchmark::DoNotOptimize(card);
  }
}
BENCHMARK(BM_EwahAndCardinality)->Arg(1)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

void BM_EwahOr(benchmark::State& state) {
  double density = DensityOf(state);
  auto a = EwahBitmap::FromIndices(RandomIndices(density, 1));
  auto b = EwahBitmap::FromIndices(RandomIndices(density, 2));
  for (auto _ : state) {
    EwahBitmap c = a.Or(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_EwahOr)->Arg(1)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_SortedVectorIntersect(benchmark::State& state) {
  double density = DensityOf(state);
  auto a = RandomIndices(density, 1);
  auto b = RandomIndices(density, 2);
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    benchmark::DoNotOptimize(out);
  }
  state.counters["bytes_a"] = static_cast<double>(a.size() * 8);
}
BENCHMARK(BM_SortedVectorIntersect)->Arg(1)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

// Clustered covers: long runs — EWAH's best case.
void BM_EwahAndClustered(benchmark::State& state) {
  std::vector<uint64_t> a_idx, b_idx;
  for (uint64_t block = 0; block < kUniverse; block += 10000) {
    if ((block / 10000) % 2 == 0) {
      for (uint64_t i = block; i < block + 10000; ++i) a_idx.push_back(i);
    }
    if ((block / 10000) % 3 == 0) {
      for (uint64_t i = block; i < block + 10000; ++i) b_idx.push_back(i);
    }
  }
  auto a = EwahBitmap::FromIndices(a_idx);
  auto b = EwahBitmap::FromIndices(b_idx);
  for (auto _ : state) {
    uint64_t card = a.AndCardinality(b);
    benchmark::DoNotOptimize(card);
  }
  state.counters["bytes_ewah"] = static_cast<double>(a.SizeInBytes());
  state.counters["bytes_raw"] = static_cast<double>(a_idx.size() * 8);
}
BENCHMARK(BM_EwahAndClustered)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
