#!/usr/bin/env python3
"""Project-invariant linter: the sync-discipline rules the compiler can't see.

Clang's thread-safety analysis proves lock discipline, but only for code
built with clang and only for annotated types. These checks keep the
codebase in the shape that makes the analysis (and TSan) trustworthy:

  raw-mutex        no std::mutex / std::lock_guard / std::unique_lock /
                   std::scoped_lock / std::condition_variable in src/
                   outside common/sync.h — everything goes through the
                   annotated sync:: types
  mutex-include    no #include <mutex> / <condition_variable> in src/
                   outside common/sync.h
  sync-include     a src/ *header* naming a sync:: type or a thread-safety
                   macro (GUARDED_BY, REQUIRES, ...) must include
                   common/sync.h itself (include-what-you-use for locks;
                   .cc files may lean on their own header's include)
  sleep-in-src     no sleep_for / sleep_until / usleep in src/ — blocking
                   delays belong behind CondVar waits or poll timeouts

Scope is src/ only: tests and benches legitimately use raw primitives as
test plumbing. Suppressions live in tools/lint_allowlist.txt as
"<rule> <path>" lines (one per entry, '#' comments); every entry should
say why.

Usage: tools/lint.py [--fix] [files...]   (default: every file in src/)
  --fix prints a remediation hint under each finding. Exit 0 = clean,
  1 = findings, 2 = usage/config error. Runs in well under 5 s.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SYNC_HEADER = "src/common/sync.h"
ALLOWLIST = REPO / "tools" / "lint_allowlist.txt"

RAW_SYNC = re.compile(
    r"std::(mutex|recursive_mutex|timed_mutex|shared_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b")
SYNC_INCLUDE = re.compile(r'#include\s*<(mutex|condition_variable|shared_mutex)>')
SYNC_USE = re.compile(
    r"\bsync::(Mutex|MutexLock|ReleasableMutexLock|CondVar)\b|"
    r"\b(GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|ACQUIRE|RELEASE|"
    r"TRY_ACQUIRE|EXCLUDES|ASSERT_CAPABILITY|RETURN_CAPABILITY|"
    r"NO_THREAD_SAFETY_ANALYSIS)\s*\(")
SYNC_H_INCLUDED = re.compile(r'#include\s*"common/sync\.h"')
SLEEP = re.compile(r"\b(sleep_for|sleep_until|usleep|nanosleep)\s*\(")

HINTS = {
    "raw-mutex": "use sync::Mutex / sync::MutexLock / sync::CondVar from "
                 "common/sync.h (annotated; no-op attributes under gcc)",
    "mutex-include": '#include "common/sync.h" instead — it is the only '
                     "src/ file that may include <mutex>",
    "sync-include": '#include "common/sync.h" directly in this file '
                    "(include-what-you-use: do not rely on transitive "
                    "includes for lock types)",
    "sleep-in-src": "replace with a CondVar wait on a real predicate or a "
                    "poll/epoll timeout; if the backoff is deliberate, add "
                    "an allowlist entry explaining why",
}


def load_allowlist():
    entries = set()
    if not ALLOWLIST.exists():
        return entries
    for raw in ALLOWLIST.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2 or parts[0] not in HINTS:
            print(f"lint: bad allowlist entry: {raw!r}", file=sys.stderr)
            sys.exit(2)
        entries.add((parts[0], parts[1]))
    return entries


def strip_comments(line):
    # Good enough for these rules: drop // comments and string contents so
    # prose about std::mutex does not trip the linter.
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    return line.split("//", 1)[0]


def lint_file(path, rel, allow, fix):
    findings = []
    try:
        text = path.read_text(encoding="utf-8")
    except (UnicodeDecodeError, OSError):
        return findings
    is_sync_h = rel == SYNC_HEADER
    uses_sync = False
    includes_sync_h = False
    in_block_comment = False
    for lineno, raw_line in enumerate(text.splitlines(), 1):
        line = raw_line
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and line.find("*/", start) < 0:
            in_block_comment = True
            line = line[:start]
        # Check includes before strip_comments blanks the quoted path.
        if SYNC_H_INCLUDED.search(line):
            includes_sync_h = True
        code = strip_comments(line)
        if not code.strip():
            continue
        if SYNC_USE.search(code):
            uses_sync = True
        if not is_sync_h:
            if RAW_SYNC.search(code):
                findings.append((rel, lineno, "raw-mutex", raw_line.strip()))
            if SYNC_INCLUDE.search(code):
                findings.append((rel, lineno, "mutex-include", raw_line.strip()))
        if SLEEP.search(code):
            findings.append((rel, lineno, "sleep-in-src", raw_line.strip()))
    if (uses_sync and not includes_sync_h and not is_sync_h
            and rel.endswith(".h")):
        findings.append((rel, 1, "sync-include",
                         "header uses sync:: types or thread-safety macros "
                         'without #include "common/sync.h"'))
    return [f for f in findings if (f[2], f[0]) not in allow]


def main(argv):
    fix = "--fix" in argv
    args = [a for a in argv if a != "--fix"]
    if args:
        files = [Path(a).resolve() for a in args]
    else:
        files = sorted(p for p in (REPO / "src").rglob("*")
                       if p.suffix in (".h", ".cc"))
    allow = load_allowlist()
    findings = []
    for path in files:
        try:
            rel = path.relative_to(REPO).as_posix()
        except ValueError:
            rel = path.as_posix()
        if not rel.startswith("src/"):
            continue  # rules are scoped to src/
        findings.extend(lint_file(path, rel, allow, fix))
    for rel, lineno, rule, context in findings:
        print(f"{rel}:{lineno}: [{rule}] {context}")
        if fix:
            print(f"    fix: {HINTS[rule]}")
    if findings:
        print(f"lint: {len(findings)} finding(s); see tools/lint.py "
              "docstring for the rules, tools/lint_allowlist.txt to "
              "suppress with a reason")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
