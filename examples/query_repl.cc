// SCubeQL REPL: interactive segregation-discovery queries over published
// cubes — the serving-layer counterpart of the batch examples.
//
// Builds a synthetic Italian scenario, runs the paper's pipeline twice
// (company-cluster units -> cube "default"; sector units -> cube
// "sectors"), publishes both into a CubeStore and serves SCubeQL against
// them on a worker pool.
//
// Run:  ./query_repl [scale]      interactive session (default 0.002)
//       ./query_repl --demo       scripted tour, then exit
//
// Queries:   TOPK 5 BY dissimilarity WHERE T >= 30
//            SLICE sa=gender=F | ca=residence_region=north
//            DRILLDOWN sa=gender=F
//            SURPRISES BY gini MINDELTA 0.1 LIMIT 5
//            REVERSALS MINGAP 0.1 FROM sectors
//            DICE sa=gender=F LIMIT 3           (then `.more` pages on)
// Commands:  .help  .cubes  .stats  .csv <query>  .json <query>
//            .more (next page of the last LIMIT'ed answer)  .quit
//
// .csv/.json render through the streaming read path (ExecuteStreaming +
// Csv/JsonWriter): rows print as the index walks produce them, and a
// LIMIT'ed answer ends with a resume cursor that `.more` feeds back.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "datagen/scenarios.h"
#include "query/cube_store.h"
#include "query/query_result.h"
#include "query/service.h"
#include "scube/pipeline.h"
#include "viz/report.h"

using namespace scube;

namespace {

constexpr const char* kHelp =
    "SCubeQL verbs:\n"
    "  SLICE sa=attr=value [& ...] | ca=attr=value [& ...]\n"
    "  DICE  <coords>                 cells containing the coordinates\n"
    "  ROLLUP / DRILLDOWN <coords>    parents / children of a cell\n"
    "  TOPK <k> BY <index>            most segregated contexts\n"
    "  SURPRISES [BY <index>] [MINDELTA <d>]\n"
    "  REVERSALS [BY <index>] [MINGAP <g>]\n"
    "clauses: FROM <cube>[@version]  WHERE T >= n AND M >= n  "
    "ORDER BY <key> [ASC|DESC]"
    "  LIMIT <n> [OFFSET <k>]\n"
    "indexes: dissimilarity gini information isolation interaction atkinson\n"
    "commands: .help .cubes .stats .csv <query> .json <query>\n"
    "          .more (next page of the last LIMIT'ed answer) .quit\n";

/// Pagination state: the last answered text, its resume cursor, and the
/// output format it was rendered in — `.more` keeps paging in the same
/// format so concatenated pages form one table/CSV/JSON sequence.
struct PageState {
  enum class Format { kTable, kCsv, kJson };
  std::string text;
  std::string cursor;
  Format format = Format::kTable;
};

void PrintResponse(const query::QueryResponse& resp, PageState* page) {
  if (!resp.status.ok()) {
    std::printf("error: %s\n", resp.status.ToString().c_str());
    return;
  }
  std::printf("%s", viz::RenderQueryResult(resp.result).c_str());
  std::printf("-- %zu rows in %.2f ms%s  [cube %s v%llu, %llu cells scanned]\n",
              resp.result.rows.size(), resp.exec_ms,
              resp.cache_hit ? " (cache hit)" : "", resp.cube.c_str(),
              static_cast<unsigned long long>(resp.cube_version),
              static_cast<unsigned long long>(resp.result.cells_scanned));
  if (page != nullptr) {
    page->text = resp.text;
    page->cursor = resp.result.next_cursor;
    page->format = PageState::Format::kTable;
    if (!page->cursor.empty()) std::printf("-- type .more for the next page\n");
  }
}

/// Streams one query through the chosen writer straight to stdout — rows
/// print as the index walks produce them, O(1) buffering end to end.
void StreamToStdout(query::QueryService* service, const std::string& text,
                    bool csv, PageState* page, const std::string& cursor) {
  auto emit = [](std::string_view chunk) {
    std::fwrite(chunk.data(), 1, chunk.size(), stdout);
    return true;
  };
  query::QueryService::StreamOutcome outcome;
  if (csv) {
    query::CsvWriter writer(emit);
    outcome = service->ExecuteStreaming(text, writer, {}, cursor);
  } else {
    query::JsonWriter writer(emit);
    outcome = service->ExecuteStreaming(text, writer, {}, cursor);
  }
  if (!outcome.status.ok()) {
    std::printf("%serror: %s\n", outcome.begun ? "\n" : "",
                outcome.status.ToString().c_str());
    return;
  }
  std::printf("\n");
  if (page != nullptr) {
    page->text = text;
    page->cursor = outcome.next_cursor;
    page->format = csv ? PageState::Format::kCsv : PageState::Format::kJson;
    if (!page->cursor.empty()) std::printf("-- type .more for the next page\n");
  }
}

bool BuildAndPublish(query::CubeStore* store, double scale) {
  auto scenario = datagen::GenerateScenario(datagen::ItalianConfig(scale));
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return false;
  }

  // Cube 1 ("default"): the paper's main flow — project the bipartite
  // graph onto companies, cluster, use communities as units.
  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupClusters;
  config.method = pipeline::ClusterMethod::kThreshold;
  config.threshold.min_weight = 2.0;
  config.cube.min_support = 20;
  config.cube.mode = fpm::MineMode::kClosed;
  config.cube.max_sa_items = 2;
  config.cube.max_ca_items = 1;
  auto result = pipeline::RunPipeline(scenario->inputs, config);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", result.status().ToString().c_str());
    return false;
  }
  std::printf("cube 'default': %zu cells (%zu defined) from %zu rows\n",
              result->cube.NumCells(), result->cube.NumDefinedCells(),
              result->final_table.NumRows());
  query::PublishPipelineResult(store, "default", std::move(*result));

  // Cube 2 ("sectors"): scenario-1 style, industry sector as the unit.
  pipeline::PipelineConfig sectors;
  sectors.unit_source = pipeline::UnitSource::kGroupAttribute;
  sectors.group_unit_attribute = "sector";
  sectors.cube.min_support = 20;
  sectors.cube.mode = fpm::MineMode::kClosed;
  sectors.cube.max_sa_items = 2;
  sectors.cube.max_ca_items = 1;
  auto sector_result = pipeline::RunPipeline(scenario->inputs, sectors);
  if (!sector_result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 sector_result.status().ToString().c_str());
    return false;
  }
  std::printf("cube 'sectors': %zu cells (%zu defined)\n",
              sector_result->cube.NumCells(),
              sector_result->cube.NumDefinedCells());
  query::PublishPipelineResult(store, "sectors", std::move(*sector_result));
  return true;
}

int RunDemo(query::QueryService* service) {
  const std::vector<std::string> tour = {
      "TOPK 5 BY dissimilarity WHERE T >= 30",
      "DRILLDOWN sa=gender=F",
      "SURPRISES BY dissimilarity MINDELTA 0.05 LIMIT 5",
      "SLICE sa=gender=F | ca=residence_region=north",
      "REVERSALS MINGAP 0.05 LIMIT 5",
      "TOPK 3 BY gini FROM sectors",
      // Exact sealed-version pin: the store keeps the last K versions.
      "TOPK 3 BY gini FROM sectors@1",
      // Repeat of the first query: answered from the LRU cache.
      "TOPK 5 BY dissimilarity WHERE T >= 30",
  };
  // One batch: scan-shaped queries on the same cube share one cell scan.
  auto responses = service->ExecuteBatch(tour);
  int failures = 0;
  for (const auto& resp : responses) {
    std::printf("\nscubeql> %s\n", resp.text.c_str());
    PrintResponse(resp, nullptr);
    if (!resp.status.ok()) ++failures;
  }
  auto stats = service->cache_stats();
  std::printf("\ncache: %llu hits, %llu misses\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));

  // The demo repeats the first query separately to show a cache hit.
  auto again = service->ExecuteOne(tour[0]);
  std::printf("\nscubeql> %s\n", tour[0].c_str());
  PrintResponse(again, nullptr);
  if (!again.cache_hit) {
    std::fprintf(stderr, "expected a cache hit on the repeated query\n");
    ++failures;
  }

  // Cursor pagination over the streaming read path: LIMIT'ed pages stitch
  // back into the full answer.
  const std::string paged = "DICE sa=gender=F LIMIT 100";
  std::printf("\nscubeql> %s  (paging with .more semantics)\n",
              paged.c_str());
  std::string cursor;
  size_t pages = 0, rows = 0;
  do {
    query::VectorSink sink;
    auto outcome = service->ExecuteStreaming(paged, sink, {}, cursor);
    if (!outcome.status.ok()) {
      std::fprintf(stderr, "streaming: %s\n",
                   outcome.status.ToString().c_str());
      ++failures;
      break;
    }
    ++pages;
    rows += sink.result().rows.size();
    cursor = outcome.next_cursor;
  } while (!cursor.empty() && pages < 10000);
  std::printf("-- %zu rows over %zu cursor-resumed pages\n", rows, pages);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  double scale = 0.002;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else {
      scale = std::atof(argv[i]);
    }
  }

  query::CubeStore store;
  if (!BuildAndPublish(&store, scale)) return 1;

  query::ServiceOptions options;
  options.num_workers = 4;
  query::QueryService service(&store, options);

  if (demo) return RunDemo(&service);

  std::printf("\n%s\n", kHelp);
  char line[4096];
  PageState page;
  while (true) {
    std::printf("scubeql> ");
    std::fflush(stdout);
    if (std::fgets(line, sizeof(line), stdin) == nullptr) break;
    std::string text(line);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    if (text.empty()) continue;

    if (text == ".quit" || text == ".exit") break;
    if (text == ".help") {
      std::printf("%s", kHelp);
      continue;
    }
    if (text == ".cubes") {
      for (const std::string& name : store.Names()) {
        uint64_t version = 0;
        auto cube = store.Get(name, &version);
        std::string retained;
        for (uint64_t v : store.RetainedVersions(name)) {
          retained += (retained.empty() ? "" : ",") + std::to_string(v);
        }
        std::printf("  %s v%llu: %zu cells (retained: %s)\n", name.c_str(),
                    static_cast<unsigned long long>(version),
                    cube ? cube->NumCells() : 0, retained.c_str());
      }
      continue;
    }
    if (text == ".stats") {
      auto stats = service.cache_stats();
      std::printf("cache: %llu hits, %llu misses, %llu evictions\n",
                  static_cast<unsigned long long>(stats.hits),
                  static_cast<unsigned long long>(stats.misses),
                  static_cast<unsigned long long>(stats.evictions));
      continue;
    }
    if (text == ".more") {
      if (page.cursor.empty()) {
        std::printf("no more pages (run a LIMIT'ed query first)\n");
        continue;
      }
      if (page.format != PageState::Format::kTable) {
        // Keep paging in the format the stream started in, so the pages
        // concatenate into one CSV/JSON sequence.
        std::string cursor = page.cursor;
        StreamToStdout(&service, page.text,
                       page.format == PageState::Format::kCsv, &page,
                       cursor);
        continue;
      }
      query::VectorSink sink;
      auto outcome =
          service.ExecuteStreaming(page.text, sink, {}, page.cursor);
      if (!outcome.status.ok()) {
        std::printf("error: %s\n", outcome.status.ToString().c_str());
        continue;
      }
      query::QueryResponse resp;
      resp.text = page.text;
      resp.cube = outcome.cube;
      resp.cube_version = outcome.cube_version;
      resp.status = outcome.status;
      resp.cache_hit = outcome.cache_hit;
      resp.exec_ms = outcome.exec_ms;
      resp.result = sink.TakeResult();
      PrintResponse(resp, &page);
      continue;
    }
    if (text.rfind(".csv ", 0) == 0 || text.rfind(".json ", 0) == 0) {
      bool csv = text[1] == 'c';
      StreamToStdout(&service, text.substr(csv ? 5 : 6), csv, &page, "");
      continue;
    }
    PrintResponse(service.ExecuteOne(text), &page);
  }
  return 0;
}
