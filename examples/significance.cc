// Significance screening: segregation indexes on small contexts can be high
// by chance. This example ranks contexts by dissimilarity and then runs the
// permutation test (indexes/significance.h, an extension beyond the paper)
// to separate statistically solid findings from small-sample noise.
//
// Run:  ./significance

#include <cstdio>

#include "cube/explorer.h"
#include "datagen/scenarios.h"
#include "indexes/significance.h"
#include "scube/pipeline.h"

int main() {
  using namespace scube;

  auto scenario = datagen::GenerateScenario(datagen::ItalianConfig(0.001, 99));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }

  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupAttribute;
  config.group_unit_attribute = "sector";
  config.cube.min_support = 5;
  config.cube.mode = fpm::MineMode::kAll;
  config.cube.max_sa_items = 2;
  config.cube.max_ca_items = 1;
  auto result = pipeline::RunPipeline(scenario->inputs, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // Candidate contexts, including small ones on purpose.
  cube::ExplorerOptions explore;
  explore.min_context_size = 20;
  explore.min_minority_size = 3;
  cube::CubeView view = std::move(result->cube).Seal();
  auto top = cube::TopSegregatedContexts(
      view, indexes::IndexKind::kDissimilarity, 12, explore);

  // Re-derive each cell's per-unit counts for the permutation test by
  // recomputing through the encoded relation.
  auto encoded = relational::EncodeForAnalysis(result->final_table);
  if (!encoded.ok()) {
    std::fprintf(stderr, "%s\n", encoded.status().ToString().c_str());
    return 1;
  }

  std::printf("%-9s %-9s %-8s %-9s %-9s  %s\n", "D", "nullMean", "p",
              "T", "M", "context");
  for (const auto& rc : top) {
    // Rebuild the cell's GroupDistribution.
    EwahBitmap context_cover = encoded->db.Cover(rc.cell->coords.ca);
    EwahBitmap minority_cover =
        context_cover.And(encoded->db.Cover(rc.cell->coords.sa));
    std::map<uint32_t, std::pair<uint64_t, uint64_t>> per_unit;
    context_cover.ForEach([&](uint64_t row) {
      ++per_unit[encoded->row_unit[row]].first;
    });
    minority_cover.ForEach([&](uint64_t row) {
      ++per_unit[encoded->row_unit[row]].second;
    });
    indexes::GroupDistribution dist;
    for (const auto& [unit, tm] : per_unit) {
      dist.AddUnit(tm.first, tm.second);
    }

    indexes::SignificanceOptions opts;
    opts.num_samples = 300;
    auto test = indexes::PermutationTest(
        indexes::IndexKind::kDissimilarity, dist, opts);
    if (!test.ok()) continue;
    std::printf("%-9.3f %-9.3f %-8.3f %-9llu %-9llu  %s%s\n",
                test->observed, test->null_mean, test->p_value,
                static_cast<unsigned long long>(rc.cell->context_size),
                static_cast<unsigned long long>(rc.cell->minority_size),
                view.LabelOf(rc.cell->coords).c_str(),
                test->p_value < 0.05 ? "  *" : "");
  }
  std::printf("\n'*' marks contexts whose dissimilarity is significant at "
              "p < 0.05 under random minority placement.\n");
  return 0;
}
