// scubed: the SCube serving daemon — SCubeQL over HTTP/1.1 and a
// newline-delimited line protocol, with admission control, per-query
// deadlines and publish-time cache warming.
//
// Run:  ./scubed --demo                      serve the demo cubes on :8080
//       ./scubed --demo --port 0             kernel-assigned port (printed)
//       ./scubed --port 9000 --workers 8 --queue 128 --deadline-ms 250
//
// Flags:
//   --port N          TCP port (default 8080; 0 = kernel-assigned)
//   --workers N       query worker threads (default 4)
//   --queue N         admission queue bound; beyond it batches shed with
//                     503 + Retry-After (default 256)
//   --deadline-ms D   default per-query deadline, 0 = unbounded
//                     (default 1000)
//   --cache N         result-cache entries (default 512)
//   --conns N         connection handler threads (default 8; under
//                     --frontend=reactor this is the dispatch pool size)
//   --frontend F      connection front-end: threads (default) or reactor.
//                     The reactor drives every socket from one epoll event
//                     loop, so 10k+ mostly-idle keep-alive connections
//                     cost fds, not threads; responses are byte-identical
//   --idle-timeout-ms D
//                     close keep-alive connections idle for D ms (default
//                     0 = derive from the idle-poll budget, 60 s)
//   --scale S         demo scenario scale (default 0.002)
//   --threads N       cube build + publish-seal threads (1 = sequential,
//                     0 = all hardware threads; default 1)
//   --slow-query-ms D log requests slower than D ms as one JSON line with
//                     their span tree (default 0 = off)
//   --trace           trace every request (spans cost a few clock reads;
//                     without this, only ?debug=trace requests and — when
//                     enabled — slow-query-log candidates are traced)
//   --demo            build + publish the demo cubes before serving
//
// Sharded serving (see src/cluster/): N shard processes each hold one
// partition of every cube, a router process fans queries out and k-way
// merges the shard streams back into the exact single-node answer.
//
//   --shard-index I   with --demo: publish only shard I of the partitioned
//   --shard-count N   demo cubes (context-hash partitioning, ghost cells
//                     included); requires 0 <= I < N
//   --partition P     partitioning strategy: hash (default) or range
//   --shards SPEC     router mode: no local cubes; scatter every query to
//                     the listed shard backends. SPEC is host:port pairs,
//                     comma-separated between shards, '|'-separated
//                     between replicas of one shard:
//                       --shards localhost:7101,localhost:7102
//                       --shards a:7101|b:7101,a:7102|b:7102
//
//   # 3-shard demo topology on one machine:
//   ./scubed --demo --port 7101 --shard-index 0 --shard-count 3 &
//   ./scubed --demo --port 7102 --shard-index 1 --shard-count 3 &
//   ./scubed --demo --port 7103 --shard-index 2 --shard-count 3 &
//   ./scubed --port 8080 --shards localhost:7101,localhost:7102,localhost:7103
//
// Talk to it:
//   curl localhost:8080/healthz
//   curl -X POST localhost:8080/query --data 'TOPK 5 BY dissimilarity WHERE T >= 30'
//   curl -X POST 'localhost:8080/query?debug=trace' --data 'TOPK 5 BY gini'
//   curl -X POST 'localhost:8080/query?format=csv' --data 'SLICE sa=gender=F'
//   curl localhost:8080/metrics
//   printf 'TOPK 3 BY gini\nQUIT\n' | nc localhost 8080     (line protocol)
//
// Streaming (chunked transfer encoding, O(1) response buffering; one
// statement per request; ?cursor= resumes the next LIMIT'ed page):
//   curl -N -X POST 'localhost:8080/query?stream=1' --data 'DICE sa=gender=F'
//   curl -N -X POST 'localhost:8080/query?stream=1' --data 'DICE sa=gender=F LIMIT 100'
//   curl -N -X POST "localhost:8080/query?stream=1&cursor=$TOKEN" --data 'DICE sa=gender=F LIMIT 100'
//   curl -N -X POST 'localhost:8080/query?stream=1&format=csv' -OJ --data 'SLICE sa=gender=F'

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "cluster/partition.h"
#include "cluster/scatter.h"
#include "cluster/shard_client.h"
#include "datagen/scenarios.h"
#include "query/cube_store.h"
#include "query/service.h"
#include "scube/pipeline.h"
#include "server/server.h"

using namespace scube;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void WaitForSignal() {
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    struct timespec ts = {0, 100 * 1000 * 1000};  // 100 ms
    nanosleep(&ts, nullptr);
  }
}

/// \brief Which slice of each demo cube this process serves.
struct ShardConfig {
  size_t index = 0;
  size_t count = 1;  ///< 1 = unsharded (publish the whole cube)
  cluster::PartitionStrategy strategy = cluster::PartitionStrategy::kHash;
};

/// Publishes `cube` — whole, or just this process's partition of it.
void PublishMaybeSharded(query::QueryService* service, const char* name,
                         cube::SegregationCube cube, const ShardConfig& shard,
                         size_t build_threads) {
  if (shard.count <= 1) {
    std::printf("cube '%s': %zu cells (%zu defined)\n", name, cube.NumCells(),
                cube.NumDefinedCells());
    service->PublishAndWarm(name, std::move(cube));
    return;
  }
  cube::CubeView view = std::move(cube).Seal(build_threads);
  cluster::PartitionOptions options;
  options.num_shards = shard.count;
  options.strategy = shard.strategy;
  cluster::PartitionStats stats;
  std::vector<cube::SegregationCube> shards =
      cluster::PartitionCube(view, options, &stats);
  std::printf("cube '%s': shard %zu/%zu owns %zu cells (+%zu ghosts)\n", name,
              shard.index, shard.count, stats.owned[shard.index],
              stats.ghosts[shard.index]);
  service->PublishAndWarm(name, std::move(shards[shard.index]));
}

bool BuildAndPublishDemo(query::QueryService* service, double scale,
                         size_t build_threads, const ShardConfig& shard) {
  auto scenario = datagen::GenerateScenario(datagen::ItalianConfig(scale));
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return false;
  }

  // Cube "default": the paper's main flow — cluster the projected company
  // graph and use communities as units.
  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupClusters;
  config.method = pipeline::ClusterMethod::kThreshold;
  config.threshold.min_weight = 2.0;
  config.cube.min_support = 20;
  config.cube.mode = fpm::MineMode::kClosed;
  config.cube.max_sa_items = 2;
  config.cube.max_ca_items = 1;
  config.cube.num_threads = build_threads;
  auto result = pipeline::RunPipeline(scenario->inputs, config);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", result.status().ToString().c_str());
    return false;
  }
  PublishMaybeSharded(service, "default", std::move(result->cube), shard,
                      build_threads);

  // Cube "sectors": industry sector as the unit.
  pipeline::PipelineConfig sectors;
  sectors.unit_source = pipeline::UnitSource::kGroupAttribute;
  sectors.group_unit_attribute = "sector";
  sectors.cube.min_support = 20;
  sectors.cube.mode = fpm::MineMode::kClosed;
  sectors.cube.max_sa_items = 2;
  sectors.cube.max_ca_items = 1;
  sectors.cube.num_threads = build_threads;
  auto sector_result = pipeline::RunPipeline(scenario->inputs, sectors);
  if (!sector_result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 sector_result.status().ToString().c_str());
    return false;
  }
  PublishMaybeSharded(service, "sectors", std::move(sector_result->cube),
                      shard, build_threads);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long port = 8080;
  query::ServiceOptions service_options;
  service_options.cache_capacity = 512;
  service_options.max_pending = 256;
  service_options.default_deadline_ms = 1000;
  server::ServerOptions server_options;
  double scale = 0.002;
  size_t build_threads = 1;
  bool demo = false;
  ShardConfig shard;
  std::string shards_spec;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atol(next("--port"));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      service_options.num_workers =
          static_cast<size_t>(std::atol(next("--workers")));
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      service_options.max_pending =
          static_cast<size_t>(std::atol(next("--queue")));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      service_options.default_deadline_ms = std::atof(next("--deadline-ms"));
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      service_options.cache_capacity =
          static_cast<size_t>(std::atol(next("--cache")));
    } else if (std::strcmp(argv[i], "--conns") == 0) {
      server_options.num_connection_threads =
          static_cast<size_t>(std::atol(next("--conns")));
    } else if (std::strcmp(argv[i], "--frontend") == 0) {
      const char* frontend = next("--frontend");
      if (std::strcmp(frontend, "threads") == 0) {
        server_options.frontend = server::Frontend::kThreads;
      } else if (std::strcmp(frontend, "reactor") == 0) {
        server_options.frontend = server::Frontend::kReactor;
      } else {
        std::fprintf(stderr, "--frontend must be threads or reactor, got %s\n",
                     frontend);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      server_options.idle_timeout_seconds =
          std::atof(next("--idle-timeout-ms")) / 1000.0;
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      scale = std::atof(next("--scale"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      build_threads = static_cast<size_t>(std::atol(next("--threads")));
      service_options.seal_threads = build_threads;
    } else if (std::strcmp(argv[i], "--slow-query-ms") == 0) {
      server_options.slow_query_ms = std::atof(next("--slow-query-ms"));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      server_options.trace_all = true;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--shard-index") == 0) {
      shard.index = static_cast<size_t>(std::atol(next("--shard-index")));
    } else if (std::strcmp(argv[i], "--shard-count") == 0) {
      shard.count = static_cast<size_t>(std::atol(next("--shard-count")));
    } else if (std::strcmp(argv[i], "--partition") == 0) {
      const char* strategy = next("--partition");
      if (std::strcmp(strategy, "hash") == 0) {
        shard.strategy = cluster::PartitionStrategy::kHash;
      } else if (std::strcmp(strategy, "range") == 0) {
        shard.strategy = cluster::PartitionStrategy::kRange;
      } else {
        std::fprintf(stderr, "--partition must be hash or range, got %s\n",
                     strategy);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards_spec = next("--shards");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "bad port %ld\n", port);
    return 2;
  }
  server_options.port = static_cast<uint16_t>(port);
  if (shard.count == 0 || shard.index >= shard.count) {
    std::fprintf(stderr, "--shard-index %zu out of range for --shard-count "
                 "%zu\n", shard.index, shard.count);
    return 2;
  }

  // --- router mode: no local cubes, every query scatters to the shards.
  if (!shards_spec.empty()) {
    if (demo || shard.count > 1) {
      std::fprintf(stderr,
                   "--shards is a pure router mode; it excludes --demo and "
                   "--shard-index/--shard-count\n");
      return 2;
    }
    auto topology = cluster::ParseShardList(shards_spec);
    if (!topology.ok()) {
      std::fprintf(stderr, "--shards: %s\n",
                   topology.status().ToString().c_str());
      return 2;
    }
    cluster::ScatterOptions scatter_options;
    scatter_options.default_deadline_ms = service_options.default_deadline_ms;
    cluster::ScatterExecutor scatter(std::move(topology).value(),
                                     scatter_options);
    server::ScubedServer server(&scatter, server_options);
    Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("scubed router listening on port %u (%zu shards, default "
                "deadline %.0f ms, %s front-end)\n",
                server.port(), scatter.num_shards(),
                scatter_options.default_deadline_ms,
                server_options.frontend == server::Frontend::kReactor
                    ? "reactor"
                    : "threaded");
    std::printf("  curl localhost:%u/cubes\n", server.port());
    std::printf("  curl -X POST localhost:%u/query --data 'TOPK 5 BY "
                "dissimilarity WHERE T >= 30'\n", server.port());
    std::fflush(stdout);
    WaitForSignal();
    std::printf("shutting down\n");
    server.Stop();
    return 0;
  }

  query::CubeStore store;
  query::QueryService service(&store, service_options);
  if (demo && !BuildAndPublishDemo(&service, scale, build_threads, shard)) {
    return 1;
  }

  server::ScubedServer server(&service, &store, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("scubed listening on port %u (%zu workers, queue bound %zu, "
              "default deadline %.0f ms, %s front-end)\n",
              server.port(), service.options().num_workers,
              service.options().max_pending,
              service.options().default_deadline_ms,
              server_options.frontend == server::Frontend::kReactor
                  ? "reactor"
                  : "threaded");
  if (shard.count > 1) {
    std::printf("  serving shard %zu of %zu (%s partitioning)\n", shard.index,
                shard.count,
                shard.strategy == cluster::PartitionStrategy::kHash
                    ? "hash"
                    : "range");
  }
  std::printf("  curl localhost:%u/healthz\n", server.port());
  std::printf("  curl -X POST localhost:%u/query --data 'TOPK 5 BY "
              "dissimilarity WHERE T >= 30'\n", server.port());
  std::fflush(stdout);

  WaitForSignal();
  std::printf("shutting down\n");
  server.Stop();
  service.Shutdown();
  return 0;
}
