// Italian boards (demo scenario 3): the full SCube pipeline on a synthetic
// replica of the Italian company registry — bipartite directors x companies,
// one-mode projection, company clustering, finalTable join, segregation
// cube, and the scube.xlsx / SVG artifacts.
//
// Run:  ./italian_boards [scale]     (default scale 0.002 ~ 4300 companies)

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "cube/explorer.h"
#include "datagen/scenarios.h"
#include "scube/pipeline.h"
#include "viz/report.h"
#include "viz/svg.h"
#include "viz/xlsx_writer.h"

int main(int argc, char** argv) {
  using namespace scube;

  double scale = argc > 1 ? std::atof(argv[1]) : 0.002;
  std::printf("== SCube on synthetic Italian boards (scale %.4f) ==\n",
              scale);

  // 1. Synthetic registry standing in for the proprietary 2012 snapshot.
  auto scenario = datagen::GenerateScenario(datagen::ItalianConfig(scale));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("directors: %s   companies: %s   board seats: %s\n",
              FormatWithCommas(static_cast<int64_t>(
                  scenario->inputs.individuals.NumRows())).c_str(),
              FormatWithCommas(static_cast<int64_t>(
                  scenario->inputs.groups.NumRows())).c_str(),
              FormatWithCommas(static_cast<int64_t>(
                  scenario->inputs.membership.NumMemberships())).c_str());

  // 2. Pipeline: projection -> threshold clustering -> join -> cube.
  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupClusters;
  config.method = pipeline::ClusterMethod::kThreshold;
  config.threshold.min_weight = 2.0;
  config.cube.min_support = 20;
  config.cube.mode = fpm::MineMode::kClosed;
  config.cube.max_sa_items = 2;
  config.cube.max_ca_items = 1;

  auto result = pipeline::RunPipeline(scenario->inputs, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("projection: %llu edges, %llu isolated companies\n",
              static_cast<unsigned long long>(result->projected_edges),
              static_cast<unsigned long long>(result->isolated_nodes));
  std::printf("clustering: %u organisational units (giant %u companies)\n",
              result->clustering.num_clusters,
              result->clustering.GiantSize());
  std::printf("finalTable: %zu rows\ncube: %zu cells (%zu defined)\n",
              result->final_table.NumRows(), result->cube.NumCells(),
              result->cube.NumDefinedCells());
  for (const auto& [stage, secs] : result->timings.stages()) {
    std::printf("  stage %-16s %.3fs\n", stage.c_str(), secs);
  }

  // 3. Seal the built cube; all exploration and export reads the view.
  cube::CubeView view = std::move(result->cube).Seal();

  // Discovery: where are women most segregated?
  cube::ExplorerOptions explore;
  explore.min_context_size = 100;
  explore.min_minority_size = 10;
  std::printf("\ntop contexts by dissimilarity:\n%s\n",
              viz::RenderTopContexts(view,
                                     indexes::IndexKind::kDissimilarity, 8,
                                     explore)
                  .c_str());

  // 4. Drill-down surprises (contexts invisible at coarser granularity).
  auto surprises = cube::DrillDownSurprises(
      view, indexes::IndexKind::kDissimilarity, 0.08, explore);
  std::printf("drill-down surprises (delta >= 0.08): %zu\n",
              surprises.size());
  for (size_t i = 0; i < surprises.size() && i < 3; ++i) {
    std::printf("  %.3f (parent %.3f): %s\n", surprises[i].value,
                surprises[i].best_parent_value,
                view.LabelOf(surprises[i].cell->coords).c_str());
  }

  // 5. Artifacts: the OOXML workbook and the cube CSV.
  Status saved = viz::WriteCubeXlsx(view, "scube.xlsx");
  std::printf("\nscube.xlsx: %s\n", saved.ok() ? "written" : "FAILED");
  Status csv = WriteStringToFile("cube.csv", view.ToCsv());
  std::printf("cube.csv:   %s\n", csv.ok() ? "written" : "FAILED");
  return 0;
}
