// Director network (demo scenario 2): directors are nodes, an edge connects
// two directors sitting on a common board; organisational units come from
// clustering this attributed graph. Compares the paper's clustering methods
// (connected components, weight-threshold CC, SToC) plus Louvain on both
// cluster structure and discovered segregation.
//
// Run:  ./director_network [scale]   (default 0.001)

#include <cstdio>
#include <cstdlib>

#include "cube/explorer.h"
#include "datagen/scenarios.h"
#include "graph/clustering.h"
#include "scube/pipeline.h"

int main(int argc, char** argv) {
  using namespace scube;

  double scale = argc > 1 ? std::atof(argv[1]) : 0.001;
  std::printf("== Director communities (scenario 2, scale %.4f) ==\n\n",
              scale);
  auto scenario = datagen::GenerateScenario(datagen::ItalianConfig(scale));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }

  struct MethodRun {
    pipeline::ClusterMethod method;
    const char* label;
  };
  const MethodRun methods[] = {
      {pipeline::ClusterMethod::kConnectedComponents, "BFS connected comp."},
      {pipeline::ClusterMethod::kThreshold, "threshold>=2 + CC"},
      {pipeline::ClusterMethod::kStoc, "SToC (tau=0.25)"},
      {pipeline::ClusterMethod::kLouvain, "Louvain"},
  };

  std::printf("%-22s %-9s %-9s %-10s %-10s\n", "method", "units", "giant",
              "femaleD", "femaleIso");
  for (const MethodRun& m : methods) {
    pipeline::PipelineConfig config;
    config.unit_source = pipeline::UnitSource::kIndividualClusters;
    config.method = m.method;
    config.threshold.min_weight = 2.0;
    config.stoc.tau = 0.25;
    config.cube.min_support = 10;
    config.cube.mode = fpm::MineMode::kAll;
    config.cube.max_sa_items = 1;
    config.cube.max_ca_items = 1;

    auto result = pipeline::RunPipeline(scenario->inputs, config);
    if (!result.ok()) {
      std::printf("%-22s FAILED: %s\n", m.label,
                  result.status().ToString().c_str());
      continue;
    }
    int gender_col = result->final_table.schema().IndexOf("gender");
    fpm::ItemId female = result->cube.catalog().Find(
        static_cast<size_t>(gender_col), "F");
    const cube::CubeCell* cell =
        female == fpm::kInvalidItem
            ? nullptr
            : result->cube.Find(fpm::Itemset({female}), fpm::Itemset());
    if (cell != nullptr && cell->indexes.defined) {
      std::printf("%-22s %-9u %-9u %-10.3f %-10.3f\n", m.label,
                  result->clustering.num_clusters,
                  result->clustering.GiantSize(),
                  cell->Value(indexes::IndexKind::kDissimilarity),
                  cell->Value(indexes::IndexKind::kIsolation));
    } else {
      std::printf("%-22s %-9u %-9u (undefined)\n", m.label,
                  result->clustering.num_clusters,
                  result->clustering.GiantSize());
    }
  }

  std::printf("\nHow much are women segregated in communities of connected "
              "directors?\n");
  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kIndividualClusters;
  config.method = pipeline::ClusterMethod::kThreshold;
  config.threshold.min_weight = 2.0;
  config.cube.min_support = 10;
  config.cube.max_sa_items = 2;
  config.cube.max_ca_items = 1;
  config.cube.mode = fpm::MineMode::kAll;
  auto result = pipeline::RunPipeline(scenario->inputs, config);
  if (result.ok()) {
    cube::ExplorerOptions explore;
    explore.min_context_size = 50;
    explore.min_minority_size = 10;
    cube::CubeView view = std::move(result->cube).Seal();
    auto top = cube::TopSegregatedContexts(
        view, indexes::IndexKind::kDissimilarity, 5, explore);
    for (const auto& rc : top) {
      std::printf("  D=%.3f  %s (T=%llu, M=%llu)\n", rc.value,
                  view.LabelOf(rc.cell->coords).c_str(),
                  static_cast<unsigned long long>(rc.cell->context_size),
                  static_cast<unsigned long long>(rc.cell->minority_size));
    }
  }
  return 0;
}
