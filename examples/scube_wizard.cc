// SCube wizard: a terminal re-creation of the standalone wizard of Fig. 4 —
// it walks the user through scenario choice, clustering method, minimum
// support, and index selection, runs the pipeline, and leaves scube.xlsx
// ready to open in a spreadsheet (the original launches Excel/LibreOffice).
//
// Run:  ./scube_wizard          (interactive)
//       ./scube_wizard --auto   (accept all defaults; for CI)

#include <cstdio>
#include <cstring>
#include <string>

#include "cube/explorer.h"
#include "datagen/scenarios.h"
#include "scube/pipeline.h"
#include "viz/report.h"
#include "viz/xlsx_writer.h"

namespace {

bool g_auto = false;

// Asks a question with a default; returns the answer (default when --auto
// or empty input).
std::string Ask(const std::string& question, const std::string& fallback) {
  std::printf("%s [%s]: ", question.c_str(), fallback.c_str());
  if (g_auto) {
    std::printf("%s\n", fallback.c_str());
    return fallback;
  }
  std::fflush(stdout);
  char buffer[256];
  if (!std::fgets(buffer, sizeof(buffer), stdin)) return fallback;
  std::string answer(buffer);
  while (!answer.empty() && (answer.back() == '\n' || answer.back() == '\r')) {
    answer.pop_back();
  }
  return answer.empty() ? fallback : answer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scube;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--auto") == 0) g_auto = true;
  }

  std::printf("=============================================\n");
  std::printf(" SCube — segregation discovery wizard\n");
  std::printf("=============================================\n\n");

  // Step 1: data.
  std::string country = Ask("Country preset (IT/EE)", "IT");
  std::string scale_str = Ask("Scale factor (1.0 = paper size)", "0.002");
  double scale = std::stod(scale_str);
  auto config_gen = country == "EE" ? datagen::EstonianConfig(scale)
                                    : datagen::ItalianConfig(scale);
  std::printf("\nGenerating synthetic %s registry...\n", country.c_str());
  auto scenario = datagen::GenerateScenario(config_gen);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu directors, %zu companies, %zu board seats\n\n",
              scenario->inputs.individuals.NumRows(),
              scenario->inputs.groups.NumRows(),
              scenario->inputs.membership.NumMemberships());

  // Step 2: scenario.
  std::printf("Analysis scenarios:\n");
  std::printf("  1. tabular      (units = company sectors)\n");
  std::printf("  2. directors    (units = communities of directors)\n");
  std::printf("  3. companies    (units = communities of companies)\n");
  std::string scenario_choice = Ask("Scenario", "3");

  pipeline::PipelineConfig config;
  if (scenario_choice == "1") {
    config.unit_source = pipeline::UnitSource::kGroupAttribute;
    config.group_unit_attribute = "sector";
  } else if (scenario_choice == "2") {
    config.unit_source = pipeline::UnitSource::kIndividualClusters;
  } else {
    config.unit_source = pipeline::UnitSource::kGroupClusters;
  }

  // Step 3: clustering method (skipped for tabular).
  if (config.unit_source != pipeline::UnitSource::kGroupAttribute) {
    std::printf("\nClustering methods: cc / threshold / stoc / louvain\n");
    std::string method = Ask("Method", "threshold");
    if (method == "cc") {
      config.method = pipeline::ClusterMethod::kConnectedComponents;
    } else if (method == "stoc") {
      config.method = pipeline::ClusterMethod::kStoc;
      config.stoc.tau = std::stod(Ask("SToC tau", "0.25"));
    } else if (method == "louvain") {
      config.method = pipeline::ClusterMethod::kLouvain;
    } else {
      config.method = pipeline::ClusterMethod::kThreshold;
      config.threshold.min_weight =
          std::stod(Ask("Edge weight threshold", "2"));
    }
  }

  // Step 4: cube parameters.
  config.cube.min_support =
      static_cast<uint64_t>(std::stoll(Ask("\nMinimum support", "20")));
  config.cube.mode = Ask("Itemsets (closed/all)", "closed") == "all"
                         ? fpm::MineMode::kAll
                         : fpm::MineMode::kClosed;
  config.cube.max_sa_items = 2;
  config.cube.max_ca_items = 1;

  // Step 5: run.
  std::printf("\nRunning the SCube pipeline...\n");
  auto result = pipeline::RunPipeline(scenario->inputs, config);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  for (const auto& [stage, secs] : result->timings.stages()) {
    std::printf("  %-18s %.3fs\n", stage.c_str(), secs);
  }
  std::printf("  cube: %zu cells (%zu defined) over %u units\n",
              result->cube.NumCells(), result->cube.NumDefinedCells(),
              result->clustering.num_clusters);
  cube::CubeView view = std::move(result->cube).Seal();

  // Step 6: explore + export.
  std::string index_name =
      Ask("\nRank contexts by index", "dissimilarity");
  auto kind = indexes::IndexKindFromString(index_name);
  cube::ExplorerOptions explore;
  explore.min_context_size = 50;
  explore.min_minority_size = 10;
  std::printf("\n%s\n",
              viz::RenderTopContexts(
                  view,
                  kind.ok() ? kind.value()
                            : indexes::IndexKind::kDissimilarity,
                  8, explore)
                  .c_str());

  std::string out = Ask("Output workbook", "scube.xlsx");
  Status saved = viz::WriteCubeXlsx(view, out);
  if (!saved.ok()) {
    std::fprintf(stderr, "export failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("\nWrote %s — open it in Excel or LibreOffice to pivot the "
              "segregation data cube.\n", out.c_str());
  return 0;
}
