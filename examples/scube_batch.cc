// SCube batch runner: the headless counterpart of the wizard — the shape of
// the SoBigData cloud method of Fig. 4 (right): point it at the three input
// CSV files plus a config file, get scube.xlsx and cube.csv back.
//
// Run:
//   ./scube_batch --demo                      # writes sample inputs first
//   ./scube_batch individuals.csv groups.csv membership.csv [config.txt]
//
// The individuals CSV must have an integer `id` column; columns listed in
// --sa / defaults become segregation attributes, the rest context. This
// demo binary keeps schema wiring simple: `id` + any of
// {gender, age_bin, birthplace} as SA, everything else categorical CA.

#include <cstdio>
#include <cstring>
#include <string>

#include "cube/explorer.h"
#include "etl/loaders.h"
#include "scube/config.h"
#include "scube/pipeline.h"
#include "viz/report.h"
#include "viz/xlsx_writer.h"

using namespace scube;

namespace {

// Infers a schema from a CSV header: `id` is the key; known SA names map to
// segregation attributes; everything else is a categorical context.
relational::Schema InferSchema(const CsvDocument& doc, bool groups) {
  relational::Schema schema;
  for (const std::string& name : doc.header) {
    relational::AttributeSpec spec;
    spec.name = name;
    if (name == "id") {
      spec.type = relational::ColumnType::kInt64;
      spec.kind = relational::AttributeKind::kId;
    } else if (!groups && (name == "gender" || name == "age_bin" ||
                           name == "birthplace" || name == "sex")) {
      spec.type = relational::ColumnType::kCategorical;
      spec.kind = relational::AttributeKind::kSegregation;
    } else {
      spec.type = relational::ColumnType::kCategorical;
      spec.kind = relational::AttributeKind::kContext;
    }
    (void)schema.AddAttribute(spec);
  }
  return schema;
}

int WriteDemoInputs() {
  const char* individuals =
      "id,gender,age_bin,region\n"
      "1,F,18-38,north\n2,M,39-46,north\n3,F,18-38,south\n"
      "4,M,18-38,south\n5,F,39-46,north\n6,M,39-46,south\n"
      "7,F,18-38,north\n8,M,18-38,north\n9,F,39-46,south\n"
      "10,M,39-46,north\n11,F,18-38,south\n12,M,18-38,south\n";
  const char* groups =
      "id,sector\n100,education\n101,education\n102,construction\n"
      "103,construction\n104,trade\n";
  const char* membership =
      "individualID,groupID\n"
      "1,100\n3,100\n5,100\n7,100\n9,101\n11,101\n1,101\n3,101\n"
      "2,102\n4,102\n6,102\n8,103\n10,103\n12,103\n2,103\n4,103\n"
      "5,104\n6,104\n";
  if (!WriteStringToFile("individuals.csv", individuals).ok() ||
      !WriteStringToFile("groups.csv", groups).ok() ||
      !WriteStringToFile("membership.csv", membership).ok()) {
    std::fprintf(stderr, "cannot write demo inputs\n");
    return 1;
  }
  std::printf("wrote individuals.csv, groups.csv, membership.csv\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) demo = true;
  }
  if (demo) {
    if (WriteDemoInputs() != 0) return 1;
  } else if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s individuals.csv groups.csv membership.csv "
                 "[config.txt]\n       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }

  std::string ind_path = demo ? "individuals.csv" : argv[1];
  std::string grp_path = demo ? "groups.csv" : argv[2];
  std::string mem_path = demo ? "membership.csv" : argv[3];

  CsvReader reader;
  auto ind_doc = reader.ParseFile(ind_path);
  auto grp_doc = reader.ParseFile(grp_path);
  auto mem_doc = reader.ParseFile(mem_path);
  for (const auto* doc : {&ind_doc, &grp_doc, &mem_doc}) {
    if (!doc->ok()) {
      std::fprintf(stderr, "%s\n", doc->status().ToString().c_str());
      return 1;
    }
  }

  auto inputs = etl::LoadInputsFromCsv(
      ind_doc.value(), InferSchema(ind_doc.value(), false), grp_doc.value(),
      InferSchema(grp_doc.value(), true), mem_doc.value());
  if (!inputs.ok()) {
    std::fprintf(stderr, "loading inputs: %s\n",
                 inputs.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu individuals, %zu groups, %zu memberships\n",
              inputs->individuals.NumRows(), inputs->groups.NumRows(),
              inputs->membership.NumMemberships());

  pipeline::PipelineConfig config;
  config.method = pipeline::ClusterMethod::kThreshold;
  config.threshold.min_weight = 2.0;
  config.cube.min_support = 1;
  config.cube.mode = fpm::MineMode::kAll;
  config.cube.max_sa_items = 2;
  config.cube.max_ca_items = 1;
  if (!demo && argc >= 5) {
    auto text = ReadFileToString(argv[4]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    auto parsed = pipeline::ParsePipelineConfig(text.value());
    if (!parsed.ok()) {
      std::fprintf(stderr, "config: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    config = parsed.value();
  }
  std::printf("\neffective configuration:\n%s\n",
              pipeline::PipelineConfigToString(config).c_str());

  auto result = pipeline::RunPipeline(inputs.value(), config);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("cube: %zu cells (%zu defined) over %u units\n\n",
              result->cube.NumCells(), result->cube.NumDefinedCells(),
              result->clustering.num_clusters);

  cube::CubeView view = std::move(result->cube).Seal();
  cube::ExplorerOptions explore;
  explore.min_context_size = 2;
  explore.min_minority_size = 1;
  std::printf("%s\n",
              viz::RenderTopContexts(view,
                                     indexes::IndexKind::kDissimilarity, 8,
                                     explore)
                  .c_str());

  Status xlsx = viz::WriteCubeXlsx(view, "scube.xlsx");
  Status csv = WriteStringToFile("cube.csv", view.ToCsv());
  std::printf("scube.xlsx: %s\ncube.csv: %s\n",
              xlsx.ok() ? "written" : xlsx.ToString().c_str(),
              csv.ok() ? "written" : csv.ToString().c_str());
  return 0;
}
