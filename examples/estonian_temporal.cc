// Estonian temporal analysis: a synthetic replica of the 20-year Estonian
// registry, analysed snapshot by snapshot. Shows how membership validity
// intervals + snapshot dates (paper §3, inputs) enable temporal segregation
// analysis: the planted feminisation drift makes gender segregation indexes
// move over the years.
//
// Run:  ./estonian_temporal [scale]   (default 0.01 ~ 3400 companies)

#include <cstdio>
#include <cstdlib>

#include "datagen/scenarios.h"
#include "scube/pipeline.h"

int main(int argc, char** argv) {
  using namespace scube;

  double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  std::printf("== Temporal segregation on synthetic Estonian registry "
              "(scale %.4f) ==\n", scale);

  auto scenario = datagen::GenerateScenario(datagen::EstonianConfig(scale));
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("directors: %zu  companies: %zu  memberships: %zu  "
              "snapshots: %zu\n\n",
              scenario->inputs.individuals.NumRows(),
              scenario->inputs.groups.NumRows(),
              scenario->inputs.membership.NumMemberships(),
              scenario->snapshot_years.size());

  pipeline::PipelineConfig config;
  config.unit_source = pipeline::UnitSource::kGroupAttribute;
  config.group_unit_attribute = "sector";
  config.cube.min_support = 5;
  config.cube.mode = fpm::MineMode::kAll;
  config.cube.max_sa_items = 1;
  config.cube.max_ca_items = 0;  // the global context only

  std::printf("%-6s %-8s %-10s %-8s %-8s %-8s\n", "year", "seats",
              "femShare", "D", "Gini", "Isolation");
  for (graph::Date year : scenario->snapshot_years) {
    config.date = year;
    auto result = pipeline::RunPipeline(scenario->inputs, config);
    if (!result.ok()) {
      std::fprintf(stderr, "year %lld: %s\n",
                   static_cast<long long>(year),
                   result.status().ToString().c_str());
      continue;
    }
    int gender_col = result->final_table.schema().IndexOf("gender");
    fpm::ItemId female = result->cube.catalog().Find(
        static_cast<size_t>(gender_col), "F");
    const cube::CubeCell* cell =
        female == fpm::kInvalidItem
            ? nullptr
            : result->cube.Find(fpm::Itemset({female}), fpm::Itemset());
    if (cell == nullptr || !cell->indexes.defined) {
      std::printf("%-6lld (no defined female cell)\n",
                  static_cast<long long>(year));
      continue;
    }
    double share = static_cast<double>(cell->minority_size) /
                   static_cast<double>(cell->context_size);
    std::printf("%-6lld %-8llu %-10.3f %-8.3f %-8.3f %-8.3f\n",
                static_cast<long long>(year),
                static_cast<unsigned long long>(cell->context_size), share,
                cell->Value(indexes::IndexKind::kDissimilarity),
                cell->Value(indexes::IndexKind::kGini),
                cell->Value(indexes::IndexKind::kIsolation));
  }
  std::printf("\nExpected shape: female share rises across the years "
              "(planted drift of +%.2f).\n", 0.15);
  return 0;
}
