// Quickstart: segregation discovery on tabular data (demo scenario 1).
//
// Builds a tiny finalTable in code — individuals with sex/age segregation
// attributes, a region context attribute, and a job-type organisational
// unit — then materialises the segregation data cube and explores it.
//
// Run:  ./quickstart

#include <cstdio>

#include "cube/builder.h"
#include "cube/explorer.h"
#include "viz/report.h"

int main() {
  using namespace scube;
  using relational::AttributeKind;
  using relational::ColumnType;

  // 1. Declare the finalTable schema: who can be segregated (SA), where
  //    (CA), and the organisational unit.
  relational::Schema schema({
      {"sex", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"age", ColumnType::kCategorical, AttributeKind::kSegregation},
      {"region", ColumnType::kCategorical, AttributeKind::kContext},
      {"job", ColumnType::kCategorical, AttributeKind::kUnit},
  });
  relational::Table table(schema);

  // 2. Load individuals (in real use: Table::FromCsv on finalTable.csv).
  struct Row {
    const char* sex;
    const char* age;
    const char* region;
    const char* job;
    int copies;
  };
  const Row rows[] = {
      {"female", "young", "north", "engineer", 2},
      {"female", "young", "north", "teacher", 8},
      {"male", "young", "north", "engineer", 9},
      {"male", "young", "north", "teacher", 3},
      {"female", "elder", "north", "teacher", 6},
      {"male", "elder", "north", "engineer", 7},
      {"male", "elder", "north", "teacher", 2},
      {"female", "young", "south", "engineer", 1},
      {"female", "young", "south", "teacher", 7},
      {"male", "young", "south", "engineer", 8},
      {"female", "elder", "south", "teacher", 4},
      {"male", "elder", "south", "engineer", 6},
      {"male", "elder", "south", "teacher", 4},
      {"female", "elder", "south", "clerk", 3},
      {"male", "elder", "south", "clerk", 2},
  };
  for (const Row& r : rows) {
    for (int i = 0; i < r.copies; ++i) {
      Status s = table.AppendRowFromStrings({r.sex, r.age, r.region, r.job});
      if (!s.ok()) {
        std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }
  std::printf("finalTable: %zu individuals, 3 job-type units\n\n",
              table.NumRows());

  // 3. Build the segregation data cube.
  cube::CubeBuilderOptions options;
  options.min_support = 3;
  options.mode = fpm::MineMode::kAll;
  options.max_sa_items = 2;
  options.max_ca_items = 1;
  auto built = cube::BuildSegregationCube(table, options);
  if (!built.ok()) {
    std::fprintf(stderr, "cube build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  // Seal the build into an immutable, indexed view; everything below —
  // pivots, top-k, drill-down — reads the view.
  cube::CubeView cube = std::move(built).value().Seal();
  std::printf("cube: %zu cells (%zu defined)\n\n", cube.NumCells(),
              cube.NumDefinedCells());

  // 4. A Fig.1-style pivot: dissimilarity of sex subgroups per region.
  viz::PivotSpec pivot;
  pivot.sa_attribute = "sex";
  pivot.ca_attribute = "region";
  auto grid = viz::RenderPivotTable(cube, pivot);
  if (grid.ok()) {
    std::printf("dissimilarity pivot (rows: sex, cols: region):\n%s\n",
                grid->c_str());
  }

  // 5. Discovery: the most segregated contexts.
  cube::ExplorerOptions explore;
  explore.min_context_size = 10;
  explore.min_minority_size = 3;
  std::printf("top segregation contexts by dissimilarity:\n%s\n",
              viz::RenderTopContexts(cube, indexes::IndexKind::kDissimilarity,
                                     5, explore)
                  .c_str());

  // 6. Inspect one cell in full (all six indexes).
  auto top = cube::TopSegregatedContexts(
      cube, indexes::IndexKind::kDissimilarity, 1, explore);
  if (!top.empty()) {
    std::printf("%s\n",
                viz::RenderCellSummary(cube, *top[0].cell).c_str());
  }
  return 0;
}
